// Package asn models Autonomous System Numbers (ASNs), the IANA ASN
// block registry, and the special/reserved number ranges that matter
// when cleaning AS-relationship validation data.
//
// The package intentionally mirrors the public IANA "Autonomous System
// (AS) Numbers" registry: 16-bit and 32-bit blocks are assigned to the
// five Regional Internet Registries (RIRs), and a handful of numbers
// and ranges are reserved for special purposes (documentation, private
// use, AS_TRANS). Relationship entries that involve a reserved ASN or
// AS_TRANS do not describe a business relationship between real
// networks and must be discarded during validation (§4.2 of Prehn &
// Feldmann, IMC'21).
package asn

import (
	"fmt"
	"strconv"
	"strings"
)

// ASN is a 32-bit Autonomous System Number.
type ASN uint32

// Special ASNs and range boundaries, per the IANA registry and RFCs
// 1930, 4893, 5398, 6793, 6996, 7300 and 7607.
const (
	// Zero is reserved (RFC 7607) and must never originate routes.
	Zero ASN = 0
	// Trans is AS_TRANS (RFC 6793): a 16-bit placeholder that
	// represents a 32-bit ASN towards devices that only understand
	// 16-bit ASNs. It is not a network and cannot have business
	// relationships.
	Trans ASN = 23456
	// Doc16First..Doc16Last is the 16-bit documentation range
	// (RFC 5398).
	Doc16First ASN = 64496
	Doc16Last  ASN = 64511
	// Private16First..Private16Last is the 16-bit private-use range
	// (RFC 6996).
	Private16First ASN = 64512
	Private16Last  ASN = 65534
	// Last16 is the last 16-bit ASN; 65535 itself is reserved
	// (RFC 7300).
	Last16 ASN = 65535
	// Doc32First..Doc32Last is the 32-bit documentation range
	// (RFC 5398).
	Doc32First ASN = 65536
	Doc32Last  ASN = 65551
	// Private32First..Private32Last is the 32-bit private-use range
	// (RFC 6996).
	Private32First ASN = 4200000000
	Private32Last  ASN = 4294967294
	// Max is the largest 32-bit ASN, reserved by RFC 7300.
	Max ASN = 4294967295
)

// String implements fmt.Stringer using the plain ("asplain", RFC 5396)
// decimal notation used by all modern tooling.
func (a ASN) String() string { return strconv.FormatUint(uint64(a), 10) }

// IsTrans reports whether a is AS_TRANS.
func (a ASN) IsTrans() bool { return a == Trans }

// Is16Bit reports whether a fits in 16 bits.
func (a ASN) Is16Bit() bool { return a <= Last16 }

// IsPrivate reports whether a falls in a private-use range (RFC 6996).
func (a ASN) IsPrivate() bool {
	return (a >= Private16First && a <= Private16Last) ||
		(a >= Private32First && a <= Private32Last)
}

// IsDocumentation reports whether a falls in a documentation range
// (RFC 5398).
func (a ASN) IsDocumentation() bool {
	return (a >= Doc16First && a <= Doc16Last) ||
		(a >= Doc32First && a <= Doc32Last)
}

// IsReserved reports whether a is reserved for any special purpose and
// therefore cannot identify a publicly routed network: zero, AS_TRANS,
// documentation, private use, 65535, and 4294967295.
func (a ASN) IsReserved() bool {
	switch {
	case a == Zero, a == Trans, a == Last16, a == Max:
		return true
	case a.IsPrivate(), a.IsDocumentation():
		return true
	}
	return false
}

// Parse converts an ASN string into an ASN. It accepts asplain
// decimal notation with an optional "AS" prefix ("AS3356", "3356")
// and the asdot notation of RFC 5396 ("1.5698" = 1<<16 + 5698).
func Parse(s string) (ASN, error) {
	if len(s) >= 2 && (s[0] == 'A' || s[0] == 'a') && (s[1] == 'S' || s[1] == 's') {
		s = s[2:]
	}
	if hi, lo, ok := strings.Cut(s, "."); ok {
		h, err := strconv.ParseUint(hi, 10, 16)
		if err != nil {
			return 0, fmt.Errorf("asn: parse asdot %q: %w", s, err)
		}
		l, err := strconv.ParseUint(lo, 10, 16)
		if err != nil {
			return 0, fmt.Errorf("asn: parse asdot %q: %w", s, err)
		}
		return ASN(h<<16 | l), nil
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("asn: parse %q: %w", s, err)
	}
	return ASN(v), nil
}

// Asdot renders the ASN in RFC 5396 asdot notation: plain decimal for
// 16-bit ASNs, "high.low" for 32-bit ones.
func (a ASN) Asdot() string {
	if a.Is16Bit() {
		return a.String()
	}
	return fmt.Sprintf("%d.%d", uint32(a)>>16, uint32(a)&0xffff)
}
