package asn

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Authority identifies who a block of ASNs is delegated to in the IANA
// registry: one of the five RIRs, or IANA itself for reserved and
// unallocated space.
type Authority uint8

// Authorities, in the lexicographic order the paper uses for its
// abbreviations (AF, AP, AR, L, R).
const (
	AuthUnknown Authority = iota
	AuthAFRINIC
	AuthAPNIC
	AuthARIN
	AuthLACNIC
	AuthRIPE
	AuthIANA // reserved / special purpose / unallocated
)

var authorityNames = [...]string{
	AuthUnknown: "Unknown",
	AuthAFRINIC: "AFRINIC",
	AuthAPNIC:   "APNIC",
	AuthARIN:    "ARIN",
	AuthLACNIC:  "LACNIC",
	AuthRIPE:    "RIPE NCC",
	AuthIANA:    "IANA",
}

// String implements fmt.Stringer.
func (a Authority) String() string {
	if int(a) < len(authorityNames) {
		return authorityNames[a]
	}
	return fmt.Sprintf("Authority(%d)", uint8(a))
}

// ParseAuthority maps a registry description (as found in the IANA
// as-numbers registry or in delegation files) to an Authority. The
// match is case-insensitive and tolerant of the "Assigned by X"
// phrasing the IANA registry uses.
func ParseAuthority(s string) Authority {
	t := strings.ToLower(s)
	switch {
	case strings.Contains(t, "afrinic"):
		return AuthAFRINIC
	case strings.Contains(t, "apnic"):
		return AuthAPNIC
	case strings.Contains(t, "arin"):
		return AuthARIN
	case strings.Contains(t, "lacnic"):
		return AuthLACNIC
	case strings.Contains(t, "ripe"):
		return AuthRIPE
	case strings.Contains(t, "iana"), strings.Contains(t, "reserved"),
		strings.Contains(t, "unallocated"), strings.Contains(t, "documentation"),
		strings.Contains(t, "private use"), strings.Contains(t, "as_trans"):
		return AuthIANA
	}
	return AuthUnknown
}

// Block is one row of the IANA AS-numbers registry: a contiguous ASN
// range delegated to an authority.
type Block struct {
	First, Last ASN
	Authority   Authority
	Description string
}

// Contains reports whether n falls inside the block.
func (b Block) Contains(n ASN) bool { return n >= b.First && n <= b.Last }

// Registry is an ordered, non-overlapping list of IANA blocks,
// supporting O(log n) lookups. The zero value is an empty registry.
type Registry struct {
	blocks []Block
}

// NewRegistry builds a registry from blocks. Blocks are sorted by first
// ASN; overlapping blocks are rejected.
func NewRegistry(blocks []Block) (*Registry, error) {
	sorted := make([]Block, len(blocks))
	copy(sorted, blocks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].First < sorted[j].First })
	for i := range sorted {
		if sorted[i].Last < sorted[i].First {
			return nil, fmt.Errorf("asn: block %d: inverted range %d-%d", i, sorted[i].First, sorted[i].Last)
		}
		if i > 0 && sorted[i].First <= sorted[i-1].Last {
			return nil, fmt.Errorf("asn: blocks %d-%d and %d-%d overlap",
				sorted[i-1].First, sorted[i-1].Last, sorted[i].First, sorted[i].Last)
		}
	}
	return &Registry{blocks: sorted}, nil
}

// Blocks returns the registry's blocks in ascending order. The returned
// slice must not be modified.
func (r *Registry) Blocks() []Block { return r.blocks }

// Len returns the number of blocks.
func (r *Registry) Len() int { return len(r.blocks) }

// Lookup returns the block containing n, if any.
func (r *Registry) Lookup(n ASN) (Block, bool) {
	i := sort.Search(len(r.blocks), func(i int) bool { return r.blocks[i].Last >= n })
	if i < len(r.blocks) && r.blocks[i].Contains(n) {
		return r.blocks[i], true
	}
	return Block{}, false
}

// Authority returns the authority for n, or AuthUnknown when n is not
// covered by any block.
func (r *Registry) Authority(n ASN) Authority {
	if b, ok := r.Lookup(n); ok {
		return b.Authority
	}
	return AuthUnknown
}

// WriteTo serialises the registry in the IANA as-numbers CSV layout:
//
//	Number,Description
//	1-1876,Assigned by ARIN
//
// Single-ASN blocks are written without the dash. A header line is
// always emitted. WriteTo implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n, err := bw.WriteString("Number,Description\n")
	total := int64(n)
	if err != nil {
		return total, err
	}
	for _, b := range r.blocks {
		var line string
		desc := b.Description
		if desc == "" {
			desc = defaultDescription(b.Authority)
		}
		if b.First == b.Last {
			line = fmt.Sprintf("%d,%s\n", b.First, desc)
		} else {
			line = fmt.Sprintf("%d-%d,%s\n", b.First, b.Last, desc)
		}
		n, err = bw.WriteString(line)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

func defaultDescription(a Authority) string {
	switch a {
	case AuthIANA:
		return "Reserved by IANA"
	case AuthUnknown:
		return "Unallocated"
	}
	return "Assigned by " + a.String()
}

// ParseRegistry reads the IANA as-numbers CSV layout produced by
// WriteTo (and by IANA itself, modulo the extra columns which are
// ignored). Lines that are empty or start with '#' are skipped.
func ParseRegistry(r io.Reader) (*Registry, error) {
	sc := bufio.NewScanner(r)
	var blocks []Block
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, ",", 3)
		if len(fields) < 2 {
			return nil, fmt.Errorf("asn: registry line %d: want at least 2 CSV fields, got %q", lineno, line)
		}
		if strings.EqualFold(fields[0], "Number") {
			continue // header
		}
		first, last, err := parseRange(fields[0])
		if err != nil {
			return nil, fmt.Errorf("asn: registry line %d: %w", lineno, err)
		}
		blocks = append(blocks, Block{
			First:       first,
			Last:        last,
			Authority:   ParseAuthority(fields[1]),
			Description: fields[1],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("asn: registry: %w", err)
	}
	return NewRegistry(blocks)
}

func parseRange(s string) (first, last ASN, err error) {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '-'); i >= 0 {
		first, err = Parse(s[:i])
		if err != nil {
			return 0, 0, err
		}
		last, err = Parse(s[i+1:])
		if err != nil {
			return 0, 0, err
		}
		if last < first {
			return 0, 0, fmt.Errorf("asn: inverted range %q", s)
		}
		return first, last, nil
	}
	first, err = Parse(s)
	return first, first, err
}
