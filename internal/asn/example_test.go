package asn_test

import (
	"fmt"
	"strings"

	"breval/internal/asn"
)

func ExampleParse() {
	a, _ := asn.Parse("AS3356")
	fmt.Println(a, a.IsReserved())
	t, _ := asn.Parse("23456")
	fmt.Println(t, t.IsTrans())
	// Output:
	// 3356 false
	// 23456 true
}

func ExampleParseRegistry() {
	const csv = `Number,Description
1-1876,Assigned by ARIN
23456,AS_TRANS; reserved by IANA`
	reg, _ := asn.ParseRegistry(strings.NewReader(csv))
	fmt.Println(reg.Authority(714))
	fmt.Println(reg.Authority(23456))
	// Output:
	// ARIN
	// IANA
}
