package bias

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/registry"
	"breval/internal/validation"
)

func regionMapper(t *testing.T) *registry.Mapper {
	t.Helper()
	iana, err := asn.NewRegistry([]asn.Block{
		{First: 1, Last: 100, Authority: asn.AuthARIN},
		{First: 101, Last: 200, Authority: asn.AuthRIPE},
		{First: 201, Last: 300, Authority: asn.AuthLACNIC},
	})
	if err != nil {
		t.Fatal(err)
	}
	return registry.NewMapper(iana)
}

func TestRegionClass(t *testing.T) {
	rc := NewRegionClassifier(regionMapper(t))
	for _, c := range []struct {
		a, b asn.ASN
		want string
		ok   bool
	}{
		{1, 2, "AR°", true},
		{150, 160, "R°", true},
		{1, 150, "AR-R", true},
		{150, 1, "AR-R", true}, // order-independent
		{250, 1, "AR-L", true},
		{250, 150, "L-R", true},
		{1, 5000, "", false},      // unmapped
		{1, asn.Trans, "", false}, // reserved
	} {
		got, ok := rc.Class(asgraph.NewLink(c.a, c.b))
		if ok != c.ok || got != c.want {
			t.Errorf("Class(%d,%d) = %q, %v; want %q, %v", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestTopoClass(t *testing.T) {
	cones := map[asn.ASN]int{
		1: 500, 2: 400, // tier-1s (also transit by cone)
		10: 50, 11: 3, // transit
		100: 0, 101: 0, // stubs
		200: 0, // hypergiant (stub by cone)
	}
	tc := NewTopoClassifier(cones, []asn.ASN{1, 2}, []asn.ASN{200})
	for _, c := range []struct {
		a, b asn.ASN
		want string
	}{
		{1, 2, "T1°"},
		{1, 10, "T1-TR"},
		{10, 11, "TR°"},
		{10, 100, "S-TR"},
		{100, 1, "S-T1"},
		{100, 101, "S°"},
		{200, 10, "H-TR"},
		{200, 100, "H-S"},
		{200, 1, "H-T1"},
		{999, 100, "S°"}, // unknown defaults to stub
	} {
		got, ok := tc.Class(asgraph.NewLink(c.a, c.b))
		if !ok || got != c.want {
			t.Errorf("Class(%d,%d) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
	if tc.Category(10) != CatTransit || tc.Category(100) != CatStub {
		t.Error("Category wrong")
	}
	if CatHypergiant.String() != "H" || TopoCategory(9).String() != "?" {
		t.Error("category names wrong")
	}
}

func TestImbalance(t *testing.T) {
	rc := NewRegionClassifier(regionMapper(t))
	links := map[asgraph.Link]bool{
		asgraph.NewLink(1, 2):     true, // AR°
		asgraph.NewLink(3, 4):     true, // AR°
		asgraph.NewLink(5, 6):     true, // AR°
		asgraph.NewLink(150, 151): true, // R°
		asgraph.NewLink(250, 251): true, // L°
		asgraph.NewLink(1, 9999):  true, // discarded
	}
	snap := validation.NewSnapshot()
	snap.Add(asgraph.NewLink(1, 2), validation.Label{Type: asgraph.P2P})
	snap.Add(asgraph.NewLink(3, 4), validation.Label{Type: asgraph.P2P})
	snap.Add(asgraph.NewLink(150, 151), validation.Label{Type: asgraph.P2P})

	stats := Imbalance(links, snap, rc)
	if len(stats) != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Class != "AR°" || stats[0].Links != 3 {
		t.Errorf("top class = %+v", stats[0])
	}
	if math.Abs(stats[0].Share-0.6) > 1e-12 {
		t.Errorf("AR° share = %v, want 0.6", stats[0].Share)
	}
	if math.Abs(stats[0].Coverage-2.0/3) > 1e-12 {
		t.Errorf("AR° coverage = %v", stats[0].Coverage)
	}
	// L° exists with zero coverage.
	for _, st := range stats {
		if st.Class == "L°" && (st.Coverage != 0 || st.Validated != 0) {
			t.Errorf("L° = %+v", st)
		}
	}
}

func TestFilterForClass(t *testing.T) {
	rc := NewRegionClassifier(regionMapper(t))
	f := FilterForClass(rc, "AR°")
	if !f(asgraph.NewLink(1, 2)) || f(asgraph.NewLink(150, 151)) || f(asgraph.NewLink(1, 9999)) {
		t.Error("filter wrong")
	}
}

func TestBuildHeatmap(t *testing.T) {
	links := []asgraph.Link{
		asgraph.NewLink(1, 2),
		asgraph.NewLink(3, 4),
		asgraph.NewLink(5, 6),
		asgraph.NewLink(7, 8),
	}
	metric := map[asn.ASN]int{
		1: 5, 2: 7, // both tiny -> bin (0,0)
		3: 2000, 4: 3, // x catch-all, y bin 0
		5: 500, 6: 200, // larger 500 -> x=5, smaller 200 >= 150 -> y catch-all
		7: 9999, 8: 9999, // both catch-all
	}
	h := BuildHeatmap(links, metric, TransitDegreeSpec())
	if h.Total != 4 {
		t.Fatalf("Total = %d", h.Total)
	}
	nx := len(h.Frac[0]) - 1
	ny := len(h.Frac) - 1
	if h.Frac[0][0] != 0.25 {
		t.Errorf("corner = %v", h.Frac[0][0])
	}
	if h.Frac[0][nx] != 0.25 {
		t.Errorf("x catch-all = %v", h.Frac[0][nx])
	}
	if h.Frac[ny][5] != 0.25 {
		t.Errorf("y catch-all = %v", h.Frac[ny][5])
	}
	if h.Frac[ny][nx] != 0.25 {
		t.Errorf("both catch-all = %v", h.Frac[ny][nx])
	}
	// Mass adds to 1.
	sum := 0.0
	for _, row := range h.Frac {
		for _, v := range row {
			sum += v
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("mass = %v", sum)
	}
	if got := h.MassAbove(1, 1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("MassAbove(1,1) = %v", got)
	}
}

func TestBuildHeatmapEmpty(t *testing.T) {
	h := BuildHeatmap(nil, nil, ConeSpec())
	if h.Total != 0 {
		t.Error("empty heatmap total wrong")
	}
	if h.MassAbove(0, 0) != 0 {
		t.Error("empty heatmap mass wrong")
	}
}

func TestMissingMetricDefaultsToZero(t *testing.T) {
	h := BuildHeatmap([]asgraph.Link{asgraph.NewLink(1, 2)}, map[asn.ASN]int{}, NodeDegreeSpec())
	if h.Frac[0][0] != 1 {
		t.Errorf("missing metric: %v", h.Frac[0][0])
	}
}

// Property: heatmap mass always sums to ~1 for non-empty link sets,
// whatever the metric values and spec, and CornerMass is within
// [0, 1].
func TestHeatmapMassProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		links := make([]asgraph.Link, 0, n)
		metric := map[asn.ASN]int{}
		for i := 0; i < n; i++ {
			a := asn.ASN(rng.Intn(300) + 1)
			b := asn.ASN(rng.Intn(300) + 1)
			if a == b {
				continue
			}
			links = append(links, asgraph.NewLink(a, b))
			metric[a] = rng.Intn(5000)
			metric[b] = rng.Intn(5000)
		}
		if len(links) == 0 {
			return true
		}
		spec := SpecFromData(links, metric, 10)
		h := BuildHeatmap(links, metric, spec)
		sum := 0.0
		for _, row := range h.Frac {
			for _, v := range row {
				sum += v
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		cm := h.CornerMass(0.5, 0.5)
		return cm >= 0 && cm <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
