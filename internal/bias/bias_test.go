package bias

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/intern"
	"breval/internal/registry"
	"breval/internal/validation"
)

// tableOf interns the given links (each becomes a one-hop path), so
// Imbalance iterates exactly that universe.
func tableOf(links ...asgraph.Link) *intern.Table {
	ps := bgp.NewPathSet(len(links), 2*len(links))
	for _, l := range links {
		ps.Append(asgraph.Path{l.A, l.B})
	}
	return intern.Build(ps)
}

func regionMapper(t *testing.T) *registry.Mapper {
	t.Helper()
	iana, err := asn.NewRegistry([]asn.Block{
		{First: 1, Last: 100, Authority: asn.AuthARIN},
		{First: 101, Last: 200, Authority: asn.AuthRIPE},
		{First: 201, Last: 300, Authority: asn.AuthLACNIC},
	})
	if err != nil {
		t.Fatal(err)
	}
	return registry.NewMapper(iana)
}

func TestRegionClass(t *testing.T) {
	rc := NewRegionClassifier(regionMapper(t))
	for _, c := range []struct {
		a, b asn.ASN
		want string
		ok   bool
	}{
		{1, 2, "AR°", true},
		{150, 160, "R°", true},
		{1, 150, "AR-R", true},
		{150, 1, "AR-R", true}, // order-independent
		{250, 1, "AR-L", true},
		{250, 150, "L-R", true},
		{1, 5000, "", false},      // unmapped
		{1, asn.Trans, "", false}, // reserved
	} {
		got, ok := rc.Class(asgraph.NewLink(c.a, c.b))
		if ok != c.ok || got != c.want {
			t.Errorf("Class(%d,%d) = %q, %v; want %q, %v", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestTopoClass(t *testing.T) {
	cones := map[asn.ASN]int{
		1: 500, 2: 400, // tier-1s (also transit by cone)
		10: 50, 11: 3, // transit
		100: 0, 101: 0, // stubs
		200: 0, // hypergiant (stub by cone)
	}
	tc := NewTopoClassifier(cones, []asn.ASN{1, 2}, []asn.ASN{200})
	for _, c := range []struct {
		a, b asn.ASN
		want string
	}{
		{1, 2, "T1°"},
		{1, 10, "T1-TR"},
		{10, 11, "TR°"},
		{10, 100, "S-TR"},
		{100, 1, "S-T1"},
		{100, 101, "S°"},
		{200, 10, "H-TR"},
		{200, 100, "H-S"},
		{200, 1, "H-T1"},
		{999, 100, "S°"}, // unknown defaults to stub
	} {
		got, ok := tc.Class(asgraph.NewLink(c.a, c.b))
		if !ok || got != c.want {
			t.Errorf("Class(%d,%d) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
	if tc.Category(10) != CatTransit || tc.Category(100) != CatStub {
		t.Error("Category wrong")
	}
	if CatHypergiant.String() != "H" || TopoCategory(9).String() != "?" {
		t.Error("category names wrong")
	}
}

func TestImbalance(t *testing.T) {
	rc := NewRegionClassifier(regionMapper(t))
	links := tableOf(
		asgraph.NewLink(1, 2),     // AR°
		asgraph.NewLink(3, 4),     // AR°
		asgraph.NewLink(5, 6),     // AR°
		asgraph.NewLink(150, 151), // R°
		asgraph.NewLink(250, 251), // L°
		asgraph.NewLink(1, 9999),  // discarded
	)
	snap := validation.NewSnapshot()
	snap.Add(asgraph.NewLink(1, 2), validation.Label{Type: asgraph.P2P})
	snap.Add(asgraph.NewLink(3, 4), validation.Label{Type: asgraph.P2P})
	snap.Add(asgraph.NewLink(150, 151), validation.Label{Type: asgraph.P2P})

	stats := Imbalance(links, snap, rc)
	if len(stats) != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Class != "AR°" || stats[0].Links != 3 {
		t.Errorf("top class = %+v", stats[0])
	}
	if math.Abs(stats[0].Share-0.6) > 1e-12 {
		t.Errorf("AR° share = %v, want 0.6", stats[0].Share)
	}
	if math.Abs(stats[0].Coverage-2.0/3) > 1e-12 {
		t.Errorf("AR° coverage = %v", stats[0].Coverage)
	}
	// L° exists with zero coverage.
	for _, st := range stats {
		if st.Class == "L°" && (st.Coverage != 0 || st.Validated != 0) {
			t.Errorf("L° = %+v", st)
		}
	}
}

func TestFilterForClass(t *testing.T) {
	rc := NewRegionClassifier(regionMapper(t))
	f := FilterForClass(rc, "AR°")
	if !f(asgraph.NewLink(1, 2)) || f(asgraph.NewLink(150, 151)) || f(asgraph.NewLink(1, 9999)) {
		t.Error("filter wrong")
	}
}

func TestBuildHeatmap(t *testing.T) {
	links := []asgraph.Link{
		asgraph.NewLink(1, 2),
		asgraph.NewLink(3, 4),
		asgraph.NewLink(5, 6),
		asgraph.NewLink(7, 8),
	}
	metric := map[asn.ASN]int{
		1: 5, 2: 7, // both tiny -> bin (0,0)
		3: 2000, 4: 3, // x catch-all, y bin 0
		5: 500, 6: 200, // larger 500 -> x=5, smaller 200 >= 150 -> y catch-all
		7: 9999, 8: 9999, // both catch-all
	}
	h := BuildHeatmap(links, func(a asn.ASN) int { return metric[a] }, TransitDegreeSpec())
	if h.Total != 4 {
		t.Fatalf("Total = %d", h.Total)
	}
	nx := len(h.Frac[0]) - 1
	ny := len(h.Frac) - 1
	if h.Frac[0][0] != 0.25 {
		t.Errorf("corner = %v", h.Frac[0][0])
	}
	if h.Frac[0][nx] != 0.25 {
		t.Errorf("x catch-all = %v", h.Frac[0][nx])
	}
	if h.Frac[ny][5] != 0.25 {
		t.Errorf("y catch-all = %v", h.Frac[ny][5])
	}
	if h.Frac[ny][nx] != 0.25 {
		t.Errorf("both catch-all = %v", h.Frac[ny][nx])
	}
	// Mass adds to 1.
	sum := 0.0
	for _, row := range h.Frac {
		for _, v := range row {
			sum += v
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("mass = %v", sum)
	}
	if got := h.MassAbove(1, 1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("MassAbove(1,1) = %v", got)
	}
}

func TestBuildHeatmapEmpty(t *testing.T) {
	h := BuildHeatmap(nil, func(asn.ASN) int { return 0 }, ConeSpec())
	if h.Total != 0 {
		t.Error("empty heatmap total wrong")
	}
	if h.MassAbove(0, 0) != 0 {
		t.Error("empty heatmap mass wrong")
	}
}

func TestMissingMetricDefaultsToZero(t *testing.T) {
	h := BuildHeatmap([]asgraph.Link{asgraph.NewLink(1, 2)}, func(asn.ASN) int { return 0 }, NodeDegreeSpec())
	if h.Frac[0][0] != 1 {
		t.Errorf("missing metric: %v", h.Frac[0][0])
	}
}

// Property: heatmap mass always sums to ~1 for non-empty link sets,
// whatever the metric values and spec, and CornerMass is within
// [0, 1].
func TestHeatmapMassProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		links := make([]asgraph.Link, 0, n)
		metric := map[asn.ASN]int{}
		for i := 0; i < n; i++ {
			a := asn.ASN(rng.Intn(300) + 1)
			b := asn.ASN(rng.Intn(300) + 1)
			if a == b {
				continue
			}
			links = append(links, asgraph.NewLink(a, b))
			metric[a] = rng.Intn(5000)
			metric[b] = rng.Intn(5000)
		}
		if len(links) == 0 {
			return true
		}
		mf := func(a asn.ASN) int { return metric[a] }
		spec := SpecFromData(links, mf, 10)
		h := BuildHeatmap(links, mf, spec)
		sum := 0.0
		for _, row := range h.Frac {
			for _, v := range row {
				sum += v
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		cm := h.CornerMass(0.5, 0.5)
		return cm >= 0 && cm <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Regression: with 9 equal-weight links the cell fractions sum to
// 1+2e-16, and a corner holding none of them used to yield a negative
// CornerMass (found by TestHeatmapMassProperty, seed
// -3029643043785975827).
func TestCornerMassNeverNegative(t *testing.T) {
	links := make([]asgraph.Link, 0, 9)
	metric := map[asn.ASN]int{}
	for i := 0; i < 9; i++ {
		a, b := asn.ASN(2*i+1), asn.ASN(2*i+2)
		links = append(links, asgraph.NewLink(a, b))
		// Every endpoint far above half the axis caps, so the lower-left
		// corner is empty.
		metric[a], metric[b] = 4000+i, 4500+i
	}
	mf := func(a asn.ASN) int { return metric[a] }
	h := BuildHeatmap(links, mf, SpecFromData(links, mf, 10))
	if cm := h.CornerMass(0.5, 0.5); cm < 0 || cm > 1 {
		t.Errorf("CornerMass = %v, want within [0, 1]", cm)
	}
}
