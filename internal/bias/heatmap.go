package bias

import (
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
)

// Heatmap is the 2-D link-size histogram of Figures 3 and 7-9: every
// link is binned by the size metric of its two incident ASes, larger
// metric on the X axis, smaller on the Y axis. The last bin of each
// axis is a catch-all for everything at or above the axis cap (the
// paper's "row above 150 / column right of 1500").
type Heatmap struct {
	// XBinWidth/YBinWidth are the bin widths; XCap/YCap the catch-all
	// thresholds.
	XBinWidth, YBinWidth int
	XCap, YCap           int
	// Frac[y][x] is the fraction of links in the bin; y grows with
	// the smaller metric, x with the larger.
	Frac [][]float64
	// Total is the number of binned links.
	Total int
}

// HeatmapSpec configures the binning.
type HeatmapSpec struct {
	XBinWidth, YBinWidth int
	XCap, YCap           int
}

// TransitDegreeSpec reproduces Figure 3's axes: larger transit degree
// up to 1500, smaller up to 150.
func TransitDegreeSpec() HeatmapSpec {
	return HeatmapSpec{XBinWidth: 100, YBinWidth: 10, XCap: 1500, YCap: 150}
}

// ConeSpec reproduces Figures 7/8's axes: larger PPDC cone size up to
// 750, smaller up to 45.
func ConeSpec() HeatmapSpec {
	return HeatmapSpec{XBinWidth: 50, YBinWidth: 3, XCap: 750, YCap: 45}
}

// NodeDegreeSpec reproduces Figure 9's axes (same caps as Figure 3).
func NodeDegreeSpec() HeatmapSpec {
	return HeatmapSpec{XBinWidth: 100, YBinWidth: 10, XCap: 1500, YCap: 150}
}

// SpecFromData derives a spec from the links to be binned, so the
// figure stays meaningful for worlds whose size metrics are orders of
// magnitude below the 2018 Internet's: the caps sit near the 98th
// percentile of the larger/smaller endpoint metrics (keeping the
// paper's catch-all top row and right column), with bins bins per
// axis. The metric is a function (dense consumers pass fs accessors;
// map-backed callers wrap a lookup); ASes without a metric value must
// yield 0.
func SpecFromData(links []asgraph.Link, metric func(asn.ASN) int, bins int) HeatmapSpec {
	if bins < 2 {
		bins = 15
	}
	larger := make([]int, 0, len(links))
	smaller := make([]int, 0, len(links))
	for _, l := range links {
		ma, mb := metric(l.A), metric(l.B)
		if ma < mb {
			ma, mb = mb, ma
		}
		larger = append(larger, ma)
		smaller = append(smaller, mb)
	}
	xcap := quantileInt(larger, 0.98)
	ycap := quantileInt(smaller, 0.98)
	xw := (xcap + bins - 1) / bins
	if xw < 1 {
		xw = 1
	}
	yw := (ycap + bins - 1) / bins
	if yw < 1 {
		yw = 1
	}
	return HeatmapSpec{XBinWidth: xw, YBinWidth: yw, XCap: xw * bins, YCap: yw * bins}
}

func quantileInt(vals []int, q float64) int {
	if len(vals) == 0 {
		return 1
	}
	s := append([]int(nil), vals...)
	sort.Ints(s)
	i := int(q * float64(len(s)-1))
	v := s[i]
	if v < 1 {
		v = 1
	}
	return v
}

// BuildHeatmap bins the given links by the per-AS size metric.
// Links whose endpoints lack a metric value must yield zero, like the
// paper's treatment of ASes missing from the size data.
func BuildHeatmap(links []asgraph.Link, metric func(asn.ASN) int, spec HeatmapSpec) *Heatmap {
	nx := spec.XCap/spec.XBinWidth + 1
	ny := spec.YCap/spec.YBinWidth + 1
	h := &Heatmap{
		XBinWidth: spec.XBinWidth, YBinWidth: spec.YBinWidth,
		XCap: spec.XCap, YCap: spec.YCap,
		Frac: make([][]float64, ny),
	}
	for y := range h.Frac {
		h.Frac[y] = make([]float64, nx)
	}
	for _, l := range links {
		ma, mb := metric(l.A), metric(l.B)
		if ma < mb {
			ma, mb = mb, ma
		}
		x := ma / spec.XBinWidth
		if x >= nx {
			x = nx - 1
		}
		y := mb / spec.YBinWidth
		if y >= ny {
			y = ny - 1
		}
		h.Frac[y][x]++
		h.Total++
	}
	if h.Total > 0 {
		for y := range h.Frac {
			for x := range h.Frac[y] {
				h.Frac[y][x] /= float64(h.Total)
			}
		}
	}
	return h
}

// MassAbove returns the fraction of links whose bin lies outside the
// lowest qx × qy corner bins — a scalar summary of how spread out the
// distribution is (the paper's validation heatmaps are far more
// uniform than the inferred ones, which concentrate in the
// bottom-left corner).
func (h *Heatmap) MassAbove(qx, qy int) float64 {
	sum := 0.0
	for y := range h.Frac {
		for x := range h.Frac[y] {
			if x >= qx || y >= qy {
				sum += h.Frac[y][x]
			}
		}
	}
	return sum
}

// CornerMass returns the fraction of links binned into the lowest
// fx/fy fraction of the x/y axes (e.g. CornerMass(1.0/3, 1.0/3) is
// the bottom-left ninth). The paper's inferred heatmaps concentrate
// here; the validated ones are far more uniform.
func (h *Heatmap) CornerMass(fx, fy float64) float64 {
	if len(h.Frac) == 0 {
		return 0
	}
	qx := int(fx * float64(len(h.Frac[0])))
	qy := int(fy * float64(len(h.Frac)))
	cm := 1 - h.MassAbove(qx, qy)
	// The per-cell fractions are count/Total, so their float sum can
	// land a few ulps either side of 1; when every link is outside the
	// corner that residue would surface as a negative fraction.
	if cm < 0 {
		return 0
	}
	if cm > 1 {
		return 1
	}
	return cm
}
