// Package bias implements the bias analysis of §5 of Prehn & Feldmann
// (IMC'21): grouping AS links into regional and topological classes,
// computing per-class link shares and validation coverage, and the 2-D
// "size" heatmaps (transit degree, customer cone, node degree) that
// contrast inferred against validatable links.
package bias

import (
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/intern"
	"breval/internal/registry"
	"breval/internal/validation"
)

// RegionClassifier assigns links to regional classes ("R°", "AR-L",
// ...) using an ASN→region mapping.
type RegionClassifier struct {
	mapper *registry.Mapper
}

// NewRegionClassifier wraps a §5-style region mapper.
func NewRegionClassifier(m *registry.Mapper) *RegionClassifier {
	return &RegionClassifier{mapper: m}
}

// Class returns the link's regional class name. ok is false when a
// link endpoint is reserved or unmapped (such links are discarded from
// the analysis, as in the paper).
func (rc *RegionClassifier) Class(l asgraph.Link) (string, bool) {
	ra := rc.mapper.Region(l.A)
	rb := rc.mapper.Region(l.B)
	if !ra.Valid() || !rb.Valid() {
		return "", false
	}
	if ra == rb {
		return ra.Abbrev() + "°", true
	}
	// Lexicographically smaller abbreviation first.
	a, b := ra.Abbrev(), rb.Abbrev()
	if a > b {
		a, b = b, a
	}
	return a + "-" + b, true
}

// TopoCategory is the paper's node category: Hypergiant, Stub, Tier-1
// or Transit.
type TopoCategory uint8

// Node categories, in the paper's class-name ordering (H < S < T1 <
// TR).
const (
	CatHypergiant TopoCategory = iota
	CatStub
	CatTier1
	CatTransit
)

// String implements fmt.Stringer.
func (c TopoCategory) String() string {
	switch c {
	case CatHypergiant:
		return "H"
	case CatStub:
		return "S"
	case CatTier1:
		return "T1"
	case CatTransit:
		return "TR"
	}
	return "?"
}

// TopoClassifier assigns links to topological classes following §5:
// stub/transit is decided by the (inferred) customer cone, then
// refined by a Tier-1 list and a hypergiant list.
type TopoClassifier struct {
	cat map[asn.ASN]TopoCategory
}

// NewTopoClassifier builds the classifier. coneSizes is the customer
// cone size per AS derived from inferred relationships (CAIDA-style);
// tier1 and hypergiants are the external lists.
func NewTopoClassifier(coneSizes map[asn.ASN]int, tier1, hypergiants []asn.ASN) *TopoClassifier {
	tc := &TopoClassifier{cat: make(map[asn.ASN]TopoCategory, len(coneSizes))}
	for a, n := range coneSizes {
		if n > 0 {
			tc.cat[a] = CatTransit
		} else {
			tc.cat[a] = CatStub
		}
	}
	for _, a := range hypergiants {
		tc.cat[a] = CatHypergiant
	}
	for _, a := range tier1 {
		tc.cat[a] = CatTier1
	}
	return tc
}

// Category returns the node category of a. ASes absent from the cone
// data default to Stub.
func (tc *TopoClassifier) Category(a asn.ASN) TopoCategory {
	if c, ok := tc.cat[a]; ok {
		return c
	}
	return CatStub
}

// Class returns the link's topological class name ("S-TR", "TR°", ...).
func (tc *TopoClassifier) Class(l asgraph.Link) (string, bool) {
	ca, cb := tc.Category(l.A), tc.Category(l.B)
	if ca == cb {
		return ca.String() + "°", true
	}
	if ca > cb {
		ca, cb = cb, ca
	}
	return ca.String() + "-" + cb.String(), true
}

// LinkClassifier maps a link to a class name; the bool discards the
// link when false.
type LinkClassifier interface {
	Class(asgraph.Link) (string, bool)
}

// ClassStat holds one bar pair of Figures 1/2: a class's share of the
// inferred links and its validation coverage.
type ClassStat struct {
	Class string
	// Links is the number of inferred links in the class, Share its
	// fraction of all classified links.
	Links int
	Share float64
	// Validated is the number of class links with validation labels;
	// Coverage is Validated/Links.
	Validated int
	Coverage  float64
}

// Imbalance computes per-class link shares and validation coverage
// for the inferred link universe — the links interned in tab — sorted
// by descending share (the paper's bar order). Snapshot entries count
// as validated whatever their label multiplicity, matching "fraction
// of links for which we have validation labels". The iteration is
// over dense link IDs (ascending canonical link order), so the result
// is deterministic without any sorting of inputs.
func Imbalance(tab *intern.Table, snap *validation.Snapshot, cls LinkClassifier) []ClassStat {
	byClass := make(map[string]*ClassStat)
	total := 0
	for lid := int32(0); lid < int32(tab.NumLinks()); lid++ {
		l := tab.Link(lid)
		name, ok := cls.Class(l)
		if !ok {
			continue
		}
		st := byClass[name]
		if st == nil {
			st = &ClassStat{Class: name}
			byClass[name] = st
		}
		st.Links++
		total++
		if snap != nil && snap.Has(l) {
			st.Validated++
		}
	}
	out := make([]ClassStat, 0, len(byClass))
	for _, st := range byClass {
		if total > 0 {
			st.Share = float64(st.Links) / float64(total)
		}
		if st.Links > 0 {
			st.Coverage = float64(st.Validated) / float64(st.Links)
		}
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// FilterForClass returns a metrics-style filter selecting the links of
// one class.
func FilterForClass(cls LinkClassifier, name string) func(asgraph.Link) bool {
	return func(l asgraph.Link) bool {
		got, ok := cls.Class(l)
		return ok && got == name
	}
}
