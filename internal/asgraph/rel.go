// Package asgraph provides the AS-level graph substrate: typed
// business relationships between Autonomous Systems, undirected link
// identities, AS paths, adjacency structures, and derived topology
// metrics (node degree, customer cones).
//
// Terminology follows the AS-relationship literature: a P2C edge
// points from provider to customer, P2P edges are settlement-free
// peering, S2S edges connect siblings of one organisation. Partial
// transit (provider exports only customer and peer routes to the
// customer, and does not export the customer's routes to its own
// peers/providers) and hybrid (relationship differs per interconnection
// point) relationships are modelled as attributes on top of the base
// type, as in Giotsas et al. (IMC'14).
package asgraph

import (
	"fmt"

	"breval/internal/asn"
)

// RelType is the base type of a business relationship.
type RelType int8

// Relationship types. The numeric values of P2P and P2C match CAIDA's
// serial-1 encoding (0 peer, -1 provider-customer); S2S uses CAIDA's
// serial-2 sibling value (1).
const (
	P2P RelType = 0  // settlement-free peers
	P2C RelType = -1 // provider-to-customer
	S2S RelType = 1  // siblings (same organisation)
)

// String implements fmt.Stringer.
func (t RelType) String() string {
	switch t {
	case P2P:
		return "p2p"
	case P2C:
		return "p2c"
	case S2S:
		return "s2s"
	}
	return fmt.Sprintf("rel(%d)", int8(t))
}

// Link is the undirected identity of an AS interconnection. The
// canonical form stores the lexicographically smaller ASN in A, so
// Link values are comparable and usable as map keys regardless of the
// direction a link was observed in.
type Link struct {
	A, B asn.ASN
}

// NewLink returns the canonical link between a and b.
func NewLink(a, b asn.ASN) Link {
	if a > b {
		a, b = b, a
	}
	return Link{A: a, B: b}
}

// Has reports whether x is one of the link's endpoints.
func (l Link) Has(x asn.ASN) bool { return l.A == x || l.B == x }

// Other returns the endpoint that is not x. It panics if x is not an
// endpoint; it exists for construction/test code where x is known
// valid. Hot paths and anything fed untrusted data use OtherOK.
func (l Link) Other(x asn.ASN) asn.ASN {
	o, ok := l.OtherOK(x)
	if !ok {
		panic(fmt.Sprintf("asgraph: %v is not an endpoint of %v", x, l))
	}
	return o
}

// OtherOK returns the endpoint that is not x, with ok=false when x is
// not an endpoint, so callers need not rely on panic-for-control-flow.
func (l Link) OtherOK(x asn.ASN) (asn.ASN, bool) {
	switch x {
	case l.A:
		return l.B, true
	case l.B:
		return l.A, true
	}
	return 0, false
}

// String implements fmt.Stringer.
func (l Link) String() string { return fmt.Sprintf("%d<->%d", l.A, l.B) }

// Rel is a typed relationship on a link. For P2C, Provider identifies
// the provider endpoint (which must be one of the link's endpoints);
// for P2P and S2S, Provider is zero and meaningless.
type Rel struct {
	Type     RelType
	Provider asn.ASN
	// PartialTransit marks a P2C relationship in which the provider
	// exports the customer's routes only to its own customers, never
	// to its peers or providers (the "174:990"-style arrangement of
	// §6.1 of Prehn & Feldmann, IMC'21).
	PartialTransit bool
	// Hybrid marks a relationship that differs across interconnection
	// points (PoPs); such links legitimately carry multiple labels.
	Hybrid bool
}

// P2CRel constructs a provider-to-customer relationship.
func P2CRel(provider asn.ASN) Rel { return Rel{Type: P2C, Provider: provider} }

// P2PRel constructs a peering relationship.
func P2PRel() Rel { return Rel{Type: P2P} }

// S2SRel constructs a sibling relationship.
func S2SRel() Rel { return Rel{Type: S2S} }

// Customer returns the customer endpoint of a P2C relationship on
// link l, and ok=false for non-P2C relationships.
func (r Rel) Customer(l Link) (asn.ASN, bool) {
	if r.Type != P2C {
		return 0, false
	}
	return l.OtherOK(r.Provider)
}

// String implements fmt.Stringer.
func (r Rel) String() string {
	if r.Type == P2C {
		s := fmt.Sprintf("p2c(provider=%d)", r.Provider)
		if r.PartialTransit {
			s += "+partial"
		}
		return s
	}
	return r.Type.String()
}
