package asgraph

import (
	"fmt"
	"strings"

	"breval/internal/asn"
)

// Path is an AS path as observed at a route collector: index 0 is the
// vantage-point AS (the collector's peer) and the last element is the
// origin AS.
type Path []asn.ASN

// VantagePoint returns the first AS of the path, the collector peer.
func (p Path) VantagePoint() asn.ASN {
	if len(p) == 0 {
		return 0
	}
	return p[0]
}

// Origin returns the last AS of the path.
func (p Path) Origin() asn.ASN {
	if len(p) == 0 {
		return 0
	}
	return p[len(p)-1]
}

// HasLoop reports whether any AS appears more than once. Paths with
// loops (usually poisoning artifacts) are discarded by all inference
// algorithms.
func (p Path) HasLoop() bool {
	if len(p) < 2 {
		return false
	}
	// Real AS paths are short; a quadratic scan avoids allocating a
	// hash set on what is the hottest per-path check in cleaning.
	if len(p) <= 32 {
		for i := 1; i < len(p); i++ {
			a := p[i]
			for _, b := range p[:i] {
				if a == b {
					return true
				}
			}
		}
		return false
	}
	seen := make(map[asn.ASN]bool, len(p))
	for _, a := range p {
		if seen[a] {
			return true
		}
		seen[a] = true
	}
	return false
}

// CompactPrepending returns the path with consecutive duplicates
// (AS-path prepending) collapsed. The receiver is unmodified.
func (p Path) CompactPrepending() Path {
	if len(p) == 0 {
		return nil
	}
	out := make(Path, 0, len(p))
	out = append(out, p[0])
	for _, a := range p[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return out
}

// CompactPrependingInto appends the path with consecutive duplicates
// collapsed to dst and returns the extended slice. It is the
// allocation-free form of CompactPrepending for callers that reuse a
// scratch buffer across paths.
func (p Path) CompactPrependingInto(dst Path) Path {
	if len(p) == 0 {
		return dst
	}
	dst = append(dst, p[0])
	for _, a := range p[1:] {
		if a != dst[len(dst)-1] {
			dst = append(dst, a)
		}
	}
	return dst
}

// Links returns the canonical links the path traverses, in order.
func (p Path) Links() []Link {
	if len(p) < 2 {
		return nil
	}
	out := make([]Link, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		out = append(out, NewLink(p[i], p[i+1]))
	}
	return out
}

// Triplets calls fn for every consecutive AS triplet (left, mid,
// right) of the path.
func (p Path) Triplets(fn func(left, mid, right asn.ASN)) {
	for i := 0; i+2 < len(p); i++ {
		fn(p[i], p[i+1], p[i+2])
	}
}

// String renders the path in the conventional space-separated order.
func (p Path) String() string {
	parts := make([]string, len(p))
	for i, a := range p {
		parts[i] = a.String()
	}
	return strings.Join(parts, " ")
}

// ParsePath parses a space-separated AS path.
func ParsePath(s string) (Path, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, fmt.Errorf("asgraph: empty path")
	}
	p := make(Path, len(fields))
	for i, f := range fields {
		a, err := asn.Parse(f)
		if err != nil {
			return nil, fmt.Errorf("asgraph: path element %d: %w", i, err)
		}
		p[i] = a
	}
	return p, nil
}

// ValleyFree reports whether the path is valley-free under the
// relationships in g: it may travel uphill (customer→provider or
// sibling), then cross at most one peer link, then only downhill
// (provider→customer or sibling). Links missing from g make the path
// non-verifiable and ValleyFree returns false for them.
func (p Path) ValleyFree(g *Graph) bool {
	// The path as stored runs VP→origin; routes propagate
	// origin→VP, so evaluate the reversed direction: origin goes up
	// its providers, across at most one peer link, then down to the VP.
	const (
		up = iota
		across
		down
	)
	phase := up
	for i := len(p) - 1; i > 0; i-- {
		from, to := p[i], p[i-1]
		r, ok := g.Rel(from, to)
		if !ok {
			return false
		}
		var step int
		switch r.Type {
		case S2S:
			continue // siblings are transparent to the valley rule
		case P2P:
			step = across
		case P2C:
			if r.Provider == to {
				step = up // moving to a provider
			} else {
				step = down
			}
		}
		switch {
		case step == up:
			if phase != up {
				return false
			}
		case step == across:
			if phase != up {
				return false
			}
			phase = across
		case step == down:
			phase = down
		}
	}
	return true
}
