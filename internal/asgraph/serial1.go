package asgraph

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"breval/internal/asn"
)

// WriteSerial1 serialises the graph's P2C and P2P relationships in
// CAIDA's serial-1 as-rel format:
//
//	# comment
//	<provider-as>|<customer-as>|-1
//	<peer-as>|<peer-as>|0
//
// S2S relationships are written with value 1 (the serial-2 sibling
// encoding) so they survive a round trip; consumers that only
// understand serial-1 skip them. Links are emitted in deterministic
// order.
func WriteSerial1(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("# breval as-rel (CAIDA serial-1 layout)\n"); err != nil {
		return err
	}
	for _, l := range g.Links() {
		r, _ := g.RelOn(l)
		var line string
		switch r.Type {
		case P2C:
			c, ok := l.OtherOK(r.Provider)
			if !ok {
				return fmt.Errorf("asgraph: serial1: provider %d not on link %v", r.Provider, l)
			}
			line = fmt.Sprintf("%d|%d|-1\n", r.Provider, c)
		case P2P:
			line = fmt.Sprintf("%d|%d|0\n", l.A, l.B)
		case S2S:
			line = fmt.Sprintf("%d|%d|1\n", l.A, l.B)
		default:
			continue
		}
		if _, err := bw.WriteString(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseSerial1 reads a CAIDA serial-1/serial-2 style as-rel file into
// a new graph. Unknown relationship values are rejected.
func ParseSerial1(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		if len(fields) < 3 {
			return nil, fmt.Errorf("asgraph: serial1 line %d: want 3 fields, got %q", lineno, line)
		}
		a, err := asn.Parse(fields[0])
		if err != nil {
			return nil, fmt.Errorf("asgraph: serial1 line %d: %w", lineno, err)
		}
		b, err := asn.Parse(fields[1])
		if err != nil {
			return nil, fmt.Errorf("asgraph: serial1 line %d: %w", lineno, err)
		}
		var rel Rel
		switch strings.TrimSpace(fields[2]) {
		case "-1":
			rel = P2CRel(a)
		case "0":
			rel = P2PRel()
		case "1":
			rel = S2SRel()
		default:
			return nil, fmt.Errorf("asgraph: serial1 line %d: unknown relationship %q", lineno, fields[2])
		}
		if err := g.SetRel(a, b, rel); err != nil {
			return nil, fmt.Errorf("asgraph: serial1 line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("asgraph: serial1: %w", err)
	}
	return g, nil
}
