package asgraph

import (
	"context"
	"fmt"
	"sort"

	"breval/internal/asn"
)

// Neighbor is one adjacency entry: the neighboring AS and the
// relationship role of the owning AS on that link.
type Neighbor struct {
	ASN  asn.ASN
	Role Role
	// PartialTransit is set on Customer entries whose relationship
	// restricts re-export (see Rel.PartialTransit).
	PartialTransit bool
}

// Role is the relationship of a neighbor relative to an AS.
type Role int8

// Roles of a neighbor relative to the owning AS.
const (
	RoleCustomer Role = iota // the neighbor is my customer
	RoleProvider             // the neighbor is my provider
	RolePeer
	RoleSibling
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleCustomer:
		return "customer"
	case RoleProvider:
		return "provider"
	case RolePeer:
		return "peer"
	case RoleSibling:
		return "sibling"
	}
	return fmt.Sprintf("role(%d)", int8(r))
}

// Graph is a typed AS-relationship graph. The zero value is not usable;
// use New.
type Graph struct {
	rels map[Link]Rel
	adj  map[asn.ASN][]Neighbor
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		rels: make(map[Link]Rel),
		adj:  make(map[asn.ASN][]Neighbor),
	}
}

// SetRel records the relationship for the link between a and b,
// replacing any previous relationship on the same link. It returns an
// error if a==b, either ASN is invalid for a relationship endpoint
// (zero), or the relationship is P2C with a provider that is not an
// endpoint.
func (g *Graph) SetRel(a, b asn.ASN, r Rel) error {
	if a == b {
		return fmt.Errorf("asgraph: self-link on %d", a)
	}
	l := NewLink(a, b)
	if r.Type == P2C && !l.Has(r.Provider) {
		return fmt.Errorf("asgraph: provider %d is not an endpoint of %v", r.Provider, l)
	}
	if old, ok := g.rels[l]; ok {
		g.dropAdjacency(l, old)
	}
	g.rels[l] = r
	g.addAdjacency(l, r)
	return nil
}

// MustSetRel is SetRel for tests and examples whose fixture inputs
// are known valid; it panics on error. Production code paths (the
// topology generator and everything downstream) use SetRel and
// propagate the error so a bad input degrades the run instead of
// killing the process.
func (g *Graph) MustSetRel(a, b asn.ASN, r Rel) {
	if err := g.SetRel(a, b, r); err != nil {
		panic(err)
	}
}

func (g *Graph) addAdjacency(l Link, r Rel) {
	switch r.Type {
	case P2C:
		// SetRel validated the provider endpoint before calling us.
		c, _ := l.OtherOK(r.Provider)
		g.adj[r.Provider] = append(g.adj[r.Provider],
			Neighbor{ASN: c, Role: RoleCustomer, PartialTransit: r.PartialTransit})
		g.adj[c] = append(g.adj[c], Neighbor{ASN: r.Provider, Role: RoleProvider})
	case P2P:
		g.adj[l.A] = append(g.adj[l.A], Neighbor{ASN: l.B, Role: RolePeer})
		g.adj[l.B] = append(g.adj[l.B], Neighbor{ASN: l.A, Role: RolePeer})
	case S2S:
		g.adj[l.A] = append(g.adj[l.A], Neighbor{ASN: l.B, Role: RoleSibling})
		g.adj[l.B] = append(g.adj[l.B], Neighbor{ASN: l.A, Role: RoleSibling})
	}
}

func (g *Graph) dropAdjacency(l Link, _ Rel) {
	drop := func(owner, nb asn.ASN) {
		s := g.adj[owner]
		for i := range s {
			if s[i].ASN == nb {
				s[i] = s[len(s)-1]
				g.adj[owner] = s[:len(s)-1]
				return
			}
		}
	}
	drop(l.A, l.B)
	drop(l.B, l.A)
}

// Remove deletes the link l and its adjacency entries. Removing an
// absent link is a no-op.
func (g *Graph) Remove(l Link) {
	r, ok := g.rels[l]
	if !ok {
		return
	}
	g.dropAdjacency(l, r)
	delete(g.rels, l)
}

// Rel returns the relationship on the link between a and b.
func (g *Graph) Rel(a, b asn.ASN) (Rel, bool) {
	r, ok := g.rels[NewLink(a, b)]
	return r, ok
}

// RelOn returns the relationship stored for link l.
func (g *Graph) RelOn(l Link) (Rel, bool) {
	r, ok := g.rels[l]
	return r, ok
}

// Neighbors returns the adjacency list of a. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(a asn.ASN) []Neighbor { return g.adj[a] }

// Degree returns the node degree (number of neighbors) of a.
func (g *Graph) Degree(a asn.ASN) int { return len(g.adj[a]) }

// NumLinks returns the number of links with a relationship.
func (g *Graph) NumLinks() int { return len(g.rels) }

// NumASes returns the number of ASes with at least one link.
func (g *Graph) NumASes() int { return len(g.adj) }

// ASes returns all ASes with at least one link, in ascending order.
func (g *Graph) ASes() []asn.ASN {
	out := make([]asn.ASN, 0, len(g.adj))
	for a := range g.adj {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Links returns all links in deterministic (A, then B) order.
func (g *Graph) Links() []Link {
	out := make([]Link, 0, len(g.rels))
	for l := range g.rels {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// ForEachRel calls fn for every (link, relationship) pair in
// unspecified order. Iteration is read-only; fn must not mutate g.
func (g *Graph) ForEachRel(fn func(Link, Rel)) {
	for l, r := range g.rels {
		fn(l, r)
	}
}

// Providers returns the providers of a (including sibling-free transit
// arrangements only; siblings are not providers), ascending.
func (g *Graph) Providers(a asn.ASN) []asn.ASN { return g.roleList(a, RoleProvider) }

// Customers returns the customers of a, ascending.
func (g *Graph) Customers(a asn.ASN) []asn.ASN { return g.roleList(a, RoleCustomer) }

// Peers returns the peers of a, ascending.
func (g *Graph) Peers(a asn.ASN) []asn.ASN { return g.roleList(a, RolePeer) }

func (g *Graph) roleList(a asn.ASN, role Role) []asn.ASN {
	var out []asn.ASN
	for _, n := range g.adj[a] {
		if n.Role == role {
			out = append(out, n.ASN)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CustomerCone returns the customer cone of a: the set of ASes
// reachable from a by following only provider→customer edges,
// excluding a itself. This is CAIDA's "provider/peer observed dataset"
// style recursive cone (PPDC) over the ground-truth graph.
func (g *Graph) CustomerCone(a asn.ASN) map[asn.ASN]bool {
	cone := make(map[asn.ASN]bool)
	stack := []asn.ASN{a}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range g.adj[x] {
			if n.Role == RoleCustomer && !cone[n.ASN] && n.ASN != a {
				cone[n.ASN] = true
				stack = append(stack, n.ASN)
			}
		}
	}
	return cone
}

// ConeSizes computes customer cone sizes for all ASes. The size counts
// cone members, excluding the AS itself (a stub has cone size 0). It
// is the uncancellable convenience form of ConeSizesContext.
func (g *Graph) ConeSizes() map[asn.ASN]int {
	sizes, err := g.ConeSizesContext(context.Background())
	if err != nil {
		// Impossible: the background context never cancels.
		panic(err)
	}
	return sizes
}

// ConeSizesContext is ConeSizes with cooperative cancellation: the
// cone walk is a long CPU-bound pure loop that would otherwise ignore
// a watchdog or deadline cancel, so it polls ctx periodically and
// returns the context's error with a nil map when cancelled.
func (g *Graph) ConeSizesContext(ctx context.Context) (map[asn.ASN]int, error) {
	// Memoised DFS over the provider→customer DAG. Cycles (which can
	// occur in dirty data, and routinely in graphs rebuilt from
	// *inferred* relationships) are broken by treating in-progress
	// nodes as empty cones — which makes the result depend on the
	// visit order. ASes and their customers are therefore visited in
	// ascending ASN order, so the sizes are identical on every run
	// even when the graph has P2C cycles.
	order := make([]asn.ASN, 0, len(g.adj))
	for a := range g.adj {
		order = append(order, a)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	sizes := make(map[asn.ASN]int, len(g.adj))
	cones := make(map[asn.ASN]map[asn.ASN]bool, len(g.adj))
	state := make(map[asn.ASN]int8, len(g.adj)) // 0 new, 1 visiting, 2 done
	visits := 0
	var ctxErr error
	var visit func(a asn.ASN) map[asn.ASN]bool
	visit = func(a asn.ASN) map[asn.ASN]bool {
		if ctxErr != nil {
			return nil
		}
		// Poll cancellation every few hundred nodes: cheap against the
		// per-node map work, frequent enough that a cancel lands within
		// microseconds, not after the whole graph.
		visits++
		if visits%256 == 0 {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				return nil
			}
		}
		switch state[a] {
		case 1:
			return nil
		case 2:
			return cones[a]
		}
		state[a] = 1
		customers := make([]asn.ASN, 0, len(g.adj[a]))
		for _, n := range g.adj[a] {
			if n.Role == RoleCustomer {
				customers = append(customers, n.ASN)
			}
		}
		sort.Slice(customers, func(i, j int) bool { return customers[i] < customers[j] })
		cone := make(map[asn.ASN]bool)
		for _, c := range customers {
			cone[c] = true
			for m := range visit(c) {
				cone[m] = true
			}
		}
		delete(cone, a)
		state[a] = 2
		cones[a] = cone
		return cone
	}
	for _, a := range order {
		sizes[a] = len(visit(a))
		if ctxErr != nil {
			return nil, ctxErr
		}
	}
	return sizes, nil
}

// IsStub reports whether a has an empty customer cone (no AS below it).
func (g *Graph) IsStub(a asn.ASN) bool {
	for _, n := range g.adj[a] {
		if n.Role == RoleCustomer {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for l, r := range g.rels {
		c.rels[l] = r
	}
	for a, ns := range g.adj {
		c.adj[a] = append([]Neighbor(nil), ns...)
	}
	return c
}
