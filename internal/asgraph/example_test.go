package asgraph_test

import (
	"fmt"

	"breval/internal/asgraph"
)

func ExamplePath_ValleyFree() {
	g := asgraph.New()
	g.MustSetRel(1, 2, asgraph.P2PRel())   // two Tier-1 peers
	g.MustSetRel(1, 10, asgraph.P2CRel(1)) // 10 buys from 1
	g.MustSetRel(2, 20, asgraph.P2CRel(2)) // 20 buys from 2
	g.MustSetRel(10, 20, asgraph.P2PRel()) // and they peer directly

	valid := asgraph.Path{10, 1, 2, 20}  // up, across, down
	valley := asgraph.Path{1, 10, 20, 2} // down, across, up: a leak
	fmt.Println(valid.ValleyFree(g))
	fmt.Println(valley.ValleyFree(g))
	// Output:
	// true
	// false
}

func ExampleGraph_CustomerCone() {
	g := asgraph.New()
	g.MustSetRel(1, 10, asgraph.P2CRel(1))
	g.MustSetRel(10, 100, asgraph.P2CRel(10))
	g.MustSetRel(10, 101, asgraph.P2CRel(10))
	cone := g.CustomerCone(1)
	fmt.Println(len(cone), cone[100])
	// Output:
	// 3 true
}
