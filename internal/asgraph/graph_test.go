package asgraph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"breval/internal/asn"
)

// testGraph builds a small hierarchy:
//
//	     1 --- 2      (clique, p2p)
//	    / \     \
//	  10   11    12   (transit, customers of clique)
//	  /\    |     |
//	100 101 102  103  (stubs)
//
// plus a peering 10--11 and siblings 100~101.
func testGraph(t testing.TB) *Graph {
	t.Helper()
	g := New()
	g.MustSetRel(1, 2, P2PRel())
	g.MustSetRel(1, 10, P2CRel(1))
	g.MustSetRel(1, 11, P2CRel(1))
	g.MustSetRel(2, 12, P2CRel(2))
	g.MustSetRel(10, 100, P2CRel(10))
	g.MustSetRel(10, 101, P2CRel(10))
	g.MustSetRel(11, 102, P2CRel(11))
	g.MustSetRel(12, 103, P2CRel(12))
	g.MustSetRel(10, 11, P2PRel())
	g.MustSetRel(100, 101, S2SRel())
	return g
}

func TestNewLinkCanonical(t *testing.T) {
	if NewLink(5, 3) != NewLink(3, 5) {
		t.Error("NewLink is not canonical")
	}
	l := NewLink(7, 2)
	if l.A != 2 || l.B != 7 {
		t.Errorf("NewLink(7,2) = %+v", l)
	}
	if !l.Has(7) || !l.Has(2) || l.Has(3) {
		t.Error("Has is wrong")
	}
	if l.Other(2) != 7 || l.Other(7) != 2 {
		t.Error("Other is wrong")
	}
}

func TestLinkOtherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Other on a non-endpoint should panic")
		}
	}()
	NewLink(1, 2).Other(3)
}

func TestSetRelValidation(t *testing.T) {
	g := New()
	if err := g.SetRel(1, 1, P2PRel()); err == nil {
		t.Error("self-link accepted")
	}
	if err := g.SetRel(1, 2, P2CRel(3)); err == nil {
		t.Error("provider outside link accepted")
	}
	if err := g.SetRel(1, 2, P2CRel(1)); err != nil {
		t.Errorf("valid relation rejected: %v", err)
	}
}

func TestRolesAndDegree(t *testing.T) {
	g := testGraph(t)
	if got := g.Providers(10); len(got) != 1 || got[0] != 1 {
		t.Errorf("Providers(10) = %v", got)
	}
	if got := g.Customers(1); len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Errorf("Customers(1) = %v", got)
	}
	if got := g.Peers(10); len(got) != 1 || got[0] != 11 {
		t.Errorf("Peers(10) = %v", got)
	}
	if g.Degree(1) != 3 {
		t.Errorf("Degree(1) = %d, want 3", g.Degree(1))
	}
	if g.Degree(100) != 2 { // provider 10 + sibling 101
		t.Errorf("Degree(100) = %d, want 2", g.Degree(100))
	}
	if g.NumLinks() != 10 || g.NumASes() != 9 {
		t.Errorf("NumLinks=%d NumASes=%d", g.NumLinks(), g.NumASes())
	}
}

func TestSetRelReplace(t *testing.T) {
	g := New()
	g.MustSetRel(1, 2, P2CRel(1))
	g.MustSetRel(1, 2, P2PRel()) // replace
	r, ok := g.Rel(1, 2)
	if !ok || r.Type != P2P {
		t.Fatalf("Rel = %v, %v", r, ok)
	}
	if len(g.Peers(1)) != 1 || len(g.Customers(1)) != 0 || len(g.Providers(2)) != 0 {
		t.Error("adjacency not rewritten after replace")
	}
	if g.NumLinks() != 1 {
		t.Errorf("NumLinks = %d, want 1", g.NumLinks())
	}
}

func TestCustomerCone(t *testing.T) {
	g := testGraph(t)
	cone := g.CustomerCone(1)
	want := []asn.ASN{10, 11, 100, 101, 102}
	if len(cone) != len(want) {
		t.Fatalf("cone(1) = %v, want %v", cone, want)
	}
	for _, a := range want {
		if !cone[a] {
			t.Errorf("cone(1) missing %d", a)
		}
	}
	if len(g.CustomerCone(100)) != 0 {
		t.Error("stub cone should be empty")
	}
	if !g.IsStub(100) || g.IsStub(10) {
		t.Error("IsStub wrong")
	}
}

func TestConeSizesMatchCustomerCone(t *testing.T) {
	g := testGraph(t)
	sizes := g.ConeSizes()
	for _, a := range g.ASes() {
		if got, want := sizes[a], len(g.CustomerCone(a)); got != want {
			t.Errorf("ConeSizes[%d] = %d, want %d", a, got, want)
		}
	}
}

func TestConeSizesSurvivesCycle(t *testing.T) {
	g := New()
	// A dirty p2c cycle: 1->2->3->1.
	g.MustSetRel(1, 2, P2CRel(1))
	g.MustSetRel(2, 3, P2CRel(2))
	g.MustSetRel(3, 1, P2CRel(3))
	sizes := g.ConeSizes() // must terminate
	for a, s := range sizes {
		if s < 1 || s > 2 {
			t.Errorf("cycle cone size [%d]=%d out of range", a, s)
		}
	}
}

// TestConeSizesDeterministicOnCycles: cycle-breaking must not depend
// on edge insertion order (graphs rebuilt from inferred relationships
// are inserted in map order and routinely contain P2C cycles, and the
// fig7-9 heatmaps bin by these sizes).
func TestConeSizesDeterministicOnCycles(t *testing.T) {
	edges := [][2]asn.ASN{
		// Two interlocking dirty p2c cycles hanging under a provider,
		// plus a clean tail.
		{1, 2}, {2, 3}, {3, 1}, {3, 4}, {4, 2},
		{9, 1}, {4, 5}, {5, 6},
	}
	build := func(perm []int) *Graph {
		g := New()
		for _, i := range perm {
			e := edges[i]
			g.MustSetRel(e[0], e[1], P2CRel(e[0]))
		}
		return g
	}
	base := build([]int{0, 1, 2, 3, 4, 5, 6, 7}).ConeSizes()
	for _, perm := range [][]int{
		{7, 6, 5, 4, 3, 2, 1, 0},
		{3, 0, 7, 2, 5, 1, 6, 4},
		{4, 2, 0, 6, 1, 7, 3, 5},
	} {
		got := build(perm).ConeSizes()
		if len(got) != len(base) {
			t.Fatalf("size maps differ in length: %d vs %d", len(got), len(base))
		}
		for a, s := range base {
			if got[a] != s {
				t.Errorf("insertion order %v: ConeSizes[%d] = %d, want %d",
					perm, a, got[a], s)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := testGraph(t)
	c := g.Clone()
	c.MustSetRel(50, 51, P2PRel())
	if _, ok := g.Rel(50, 51); ok {
		t.Error("Clone shares state with original")
	}
	if c.NumLinks() != g.NumLinks()+1 {
		t.Error("clone link count wrong")
	}
}

func TestPathBasics(t *testing.T) {
	p := Path{10, 1, 2, 12, 103}
	if p.VantagePoint() != 10 || p.Origin() != 103 {
		t.Error("VantagePoint/Origin wrong")
	}
	if p.HasLoop() {
		t.Error("no loop expected")
	}
	if !(Path{1, 2, 1}).HasLoop() {
		t.Error("loop not detected")
	}
	links := p.Links()
	if len(links) != 4 || links[0] != NewLink(1, 10) || links[3] != NewLink(12, 103) {
		t.Errorf("Links = %v", links)
	}
	var trip [][3]asn.ASN
	p.Triplets(func(l, m, r asn.ASN) { trip = append(trip, [3]asn.ASN{l, m, r}) })
	if len(trip) != 3 || trip[0] != [3]asn.ASN{10, 1, 2} {
		t.Errorf("Triplets = %v", trip)
	}
}

func TestCompactPrepending(t *testing.T) {
	p := Path{10, 1, 1, 1, 2, 2, 3}
	got := p.CompactPrepending()
	want := Path{10, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("CompactPrepending = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CompactPrepending = %v, want %v", got, want)
		}
	}
	if len(Path{}.CompactPrepending()) != 0 {
		t.Error("empty path should stay empty")
	}
}

func TestParsePathRoundTrip(t *testing.T) {
	p := Path{10, 1, 2, 12}
	got, err := ParsePath(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(p) {
		t.Fatalf("round trip: %v", got)
	}
	for i := range p {
		if got[i] != p[i] {
			t.Fatalf("round trip: %v", got)
		}
	}
	if _, err := ParsePath(""); err == nil {
		t.Error("empty path parsed")
	}
	if _, err := ParsePath("1 x 3"); err == nil {
		t.Error("garbage path parsed")
	}
}

func TestValleyFree(t *testing.T) {
	g := testGraph(t)
	cases := []struct {
		p    Path
		want bool
	}{
		{Path{100, 10, 1, 2, 12, 103}, true}, // up, up, across, down, down
		{Path{100, 10, 11, 102}, true},       // up, across, down
		{Path{102, 11, 10, 100}, true},       // symmetric
		{Path{10, 1, 2, 12}, true},           // starts at transit
		{Path{100, 10, 11, 1}, false},        // peer then up: valley
		{Path{1, 10, 11, 2}, false},          // down, across, up
		{Path{100, 101, 10}, true},           // sibling hop is transparent
		{Path{12, 2, 1, 11}, true},           // up, across... wait: 12->2 up, 2->1 across, 1->11 down
		{Path{100, 10, 999}, false},          // unknown link
	}
	for _, c := range cases {
		if got := c.p.ValleyFree(g); got != c.want {
			t.Errorf("ValleyFree(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSerial1RoundTrip(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := WriteSerial1(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSerial1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLinks() != g.NumLinks() {
		t.Fatalf("round trip: %d links, want %d", got.NumLinks(), g.NumLinks())
	}
	g.ForEachRel(func(l Link, r Rel) {
		rr, ok := got.RelOn(l)
		if !ok || rr.Type != r.Type {
			t.Errorf("link %v: got %v, want %v", l, rr, r)
			return
		}
		if r.Type == P2C && rr.Provider != r.Provider {
			t.Errorf("link %v: provider %d, want %d", l, rr.Provider, r.Provider)
		}
	})
}

func TestSerial1ParseErrors(t *testing.T) {
	for _, in := range []string{
		"1|2\n",
		"1|2|7\n",
		"x|2|0\n",
		"1|y|0\n",
		"1|1|0\n",
	} {
		if _, err := ParseSerial1(bytes.NewBufferString(in)); err == nil {
			t.Errorf("ParseSerial1(%q) succeeded", in)
		}
	}
}

// Property: serial-1 round trip preserves arbitrary random graphs.
func TestSerial1RoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		for i := 0; i < 50; i++ {
			a := asn.ASN(rng.Intn(200) + 1)
			b := asn.ASN(rng.Intn(200) + 1)
			if a == b {
				continue
			}
			switch rng.Intn(3) {
			case 0:
				g.MustSetRel(a, b, P2CRel(a))
			case 1:
				g.MustSetRel(a, b, P2PRel())
			case 2:
				g.MustSetRel(a, b, S2SRel())
			}
		}
		var buf bytes.Buffer
		if err := WriteSerial1(&buf, g); err != nil {
			return false
		}
		got, err := ParseSerial1(&buf)
		if err != nil || got.NumLinks() != g.NumLinks() {
			return false
		}
		ok := true
		g.ForEachRel(func(l Link, r Rel) {
			rr, found := got.RelOn(l)
			if !found || rr.Type != r.Type || (r.Type == P2C && rr.Provider != r.Provider) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: customer cones are monotone — a provider's cone contains
// every customer's cone.
func TestConeMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		// Random DAG-ish hierarchy: provider always lower ASN.
		for i := 0; i < 80; i++ {
			a := asn.ASN(rng.Intn(100) + 1)
			b := asn.ASN(rng.Intn(100) + 1)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			g.MustSetRel(a, b, P2CRel(a))
		}
		for _, p := range g.ASes() {
			cone := g.CustomerCone(p)
			for _, c := range g.Customers(p) {
				for m := range g.CustomerCone(c) {
					if m != p && !cone[m] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRelHelpers(t *testing.T) {
	l := NewLink(3, 9)
	r := P2CRel(9)
	c, ok := r.Customer(l)
	if !ok || c != 3 {
		t.Errorf("Customer = %v, %v", c, ok)
	}
	if _, ok := P2PRel().Customer(l); ok {
		t.Error("P2P has no customer")
	}
	if _, ok := P2CRel(99).Customer(l); ok {
		t.Error("foreign provider should not resolve")
	}
	if P2P.String() != "p2p" || P2C.String() != "p2c" || S2S.String() != "s2s" {
		t.Error("RelType.String wrong")
	}
}
