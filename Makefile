# Convenience targets; scripts/check.sh is the canonical gate.

.PHONY: build test check bench bench-xl fsck soak serve

build:
	go build ./...

test:
	go test ./...

check:
	sh scripts/check.sh

# Full-scale benchmark sweep; writes BENCH_<date>.json (see
# docs/observability.md for the schema). BENCH/BENCHTIME narrow it:
#   make bench BENCH=Propagation BENCHTIME=5x
bench:
	sh scripts/bench.sh $(or $(BENCH),.) $(or $(BENCHTIME),1x)

# The xl memory-envelope tier (~minutes per iteration): records
# BENCH_XL_<date>.json with the peakRSS_MB metric docs/performance.md
# cites, gated against a committed baseline when AGAINST is set:
#   make bench-xl AGAINST=BENCH_XL_2026-08-08.json
bench-xl:
	sh scripts/bench.sh -size xl $(if $(AGAINST),-against $(AGAINST)) \
		$(or $(BENCH),^BenchmarkXL) $(or $(BENCHTIME),1x)

# Seeded chaos soak through the real binary: SOAK_RUNS storms of
# injected crashes/panics/errors/memory pressure, each recovered via
# restart+resume and required byte-identical to a fault-free baseline
# (see docs/resilience.md). Also runs under `CHECK_SOAK=1 make check`.
soak:
	go run ./cmd/breval -soak $(or $(SOAK_RUNS),5) -chaos-seed $(or $(CHAOS_SEED),42) \
		-ases 450 -algos ASRank,Gao

# Run the bias-analysis daemon (see docs/service.md). Override with
#   make serve ADDR=0.0.0.0:9000 DATA_DIR=/var/lib/brevald MAX_RUNS=4
# DATA_DIR enables the durable result cache and crash/resume; SIGTERM
# (Ctrl-C) drains cleanly.
serve:
	go run ./cmd/brevald -addr $(or $(ADDR),127.0.0.1:8478) \
		-data-dir $(or $(DATA_DIR),.brevald-data) \
		-max-runs $(or $(MAX_RUNS),2)

# Verify a checkpoint store offline (see docs/checkpointing.md):
#   make fsck CHECKPOINT_DIR=/path/to/store
# Exits nonzero when the store holds corrupt or missing artifacts.
fsck:
	@test -n "$(CHECKPOINT_DIR)" || { echo "usage: make fsck CHECKPOINT_DIR=<dir>"; exit 2; }
	go run ./cmd/breval -checkpoint-dir "$(CHECKPOINT_DIR)" -checkpoint-verify
