# Convenience targets; scripts/check.sh is the canonical gate.

.PHONY: build test check bench fsck

build:
	go build ./...

test:
	go test ./...

check:
	sh scripts/check.sh

# Full-scale benchmark sweep; writes BENCH_<date>.json (see
# docs/observability.md for the schema). BENCH/BENCHTIME narrow it:
#   make bench BENCH=Propagation BENCHTIME=5x
bench:
	sh scripts/bench.sh $(or $(BENCH),.) $(or $(BENCHTIME),1x)

# Verify a checkpoint store offline (see docs/checkpointing.md):
#   make fsck CHECKPOINT_DIR=/path/to/store
# Exits nonzero when the store holds corrupt or missing artifacts.
fsck:
	@test -n "$(CHECKPOINT_DIR)" || { echo "usage: make fsck CHECKPOINT_DIR=<dir>"; exit 2; }
	go run ./cmd/breval -checkpoint-dir "$(CHECKPOINT_DIR)" -checkpoint-verify
