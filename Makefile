# Convenience targets; scripts/check.sh is the canonical gate.

.PHONY: build test check

build:
	go build ./...

test:
	go test ./...

check:
	sh scripts/check.sh
