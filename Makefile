# Convenience targets; scripts/check.sh is the canonical gate.

.PHONY: build test check bench

build:
	go build ./...

test:
	go test ./...

check:
	sh scripts/check.sh

# Full-scale benchmark sweep; writes BENCH_<date>.json (see
# docs/observability.md for the schema). BENCH/BENCHTIME narrow it:
#   make bench BENCH=Propagation BENCHTIME=5x
bench:
	sh scripts/bench.sh $(or $(BENCH),.) $(or $(BENCHTIME),1x)
