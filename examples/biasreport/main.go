// Biasreport renders the bias analysis of §5 — the regional and
// topological imbalance bars (Figures 1 and 2) and the transit-degree
// heatmap pair (Figure 3) — for a mid-size synthetic Internet.
//
// It demonstrates the analysis-side API: region mapping from registry
// files, topological classification from inferred customer cones, and
// per-class coverage computation.
package main

import (
	"fmt"
	"log"
	"os"

	"breval/internal/core"
)

func main() {
	scenario := core.DefaultScenario(7)
	scenario.NumASes = 2500
	// The bias analysis needs only one inference (for the customer
	// cones that split stubs from transit ASes).
	scenario.Algorithms = []string{core.AlgoASRank}

	art, err := core.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}

	if err := art.RenderFigure1(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := art.RenderFigure2(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := core.RenderHeatmapPair(os.Stdout, "Figure 3", art.Figure3()); err != nil {
		log.Fatal(err)
	}

	// The two structural findings of §5, as plain statements:
	covByClass := map[string]float64{}
	for _, st := range art.Figure1() {
		covByClass[st.Class] = st.Coverage
	}
	fmt.Printf("\nLACNIC-internal links with validation labels: %.1f%%\n", 100*covByClass["L°"])
	fmt.Printf("ARIN-internal links with validation labels:   %.1f%%\n", 100*covByClass["AR°"])
}
