// Incentives demonstrates the two §7 do-ut-des services the paper
// argues could convince operators to contribute accurate relationship
// data: Peerlock route-leak filters and peering recommendations —
// and shows how both degrade when built from inferred (rather than
// true) relationships.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/core"
	"breval/internal/peerlock"
	"breval/internal/peerrec"
)

func main() {
	scenario := core.DefaultScenario(13)
	scenario.NumASes = 2000
	scenario.Algorithms = []string{core.AlgoASRank}

	art, err := core.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}

	// Inferred relationships as the service's data basis.
	inferred := asgraph.New()
	for l, rel := range art.Results[core.AlgoASRank].Rels {
		if err := inferred.SetRel(l.A, l.B, rel); err != nil {
			log.Fatal(err)
		}
	}

	// Pick a mid-size transit AS as the subscriber: the largest
	// non-clique transit network.
	clique := art.World.CliqueSet()
	var subscriber asn.ASN
	best := 0
	for _, a := range art.World.ASNs {
		if clique[a] || art.World.Graph.IsStub(a) {
			continue
		}
		if d := art.World.Graph.Degree(a); d > best {
			best, subscriber = d, a
		}
	}
	fmt.Printf("subscriber: AS%d (degree %d)\n\n", subscriber, best)

	// --- Peerlock filters, truth vs inferred ---
	fmt.Println("== Peerlock route-leak protection ==")
	for _, basis := range []struct {
		name string
		g    *asgraph.Graph
	}{
		{"ground truth", art.World.Graph},
		{"ASRank inference", inferred},
	} {
		cfg := peerlock.Generate(basis.g, subscriber, art.World.Clique)
		out := peerlock.Evaluate(art.World.Graph, cfg, art.World.Clique)
		fmt.Printf("%-18s rules %3d | leaks blocked %4d missed %3d | legitimate dropped %3d\n",
			basis.name, len(cfg.Rules), out.LeaksBlocked, out.LeaksMissed, out.LegitimateDropped)
	}

	fmt.Println("\nsample of the generated filter (inferred basis):")
	cfg := peerlock.Generate(inferred, subscriber, art.World.Clique)
	if len(cfg.Rules) > 2 {
		cfg.Rules = cfg.Rules[:2]
	}
	if _, err := cfg.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// --- Peering recommendations ---
	fmt.Println("\n== Peering recommendations ==")
	memberships := make([][]asn.ASN, 0, len(art.World.IXPs))
	for _, ix := range art.World.IXPs {
		memberships = append(memberships, ix.Members)
	}
	rec := peerrec.New(inferred, memberships)
	fmt.Println("top peers to approach:")
	for _, c := range rec.RecommendPeers(subscriber, 5) {
		fmt.Printf("  AS%-6d offloads %4d cone ASes, %d shared IXPs (score %.0f)\n",
			c.ASN, c.NewCone, c.SharedIXPs, c.Score)
	}
	fmt.Println("top IXPs to join:")
	ixps := rec.RecommendIXPs(subscriber, 3)
	sort.Slice(ixps, func(i, j int) bool { return ixps[i].Score > ixps[j].Score })
	for _, c := range ixps {
		fmt.Printf("  IXP %-3d reaches %4d new cone ASes via %d members\n",
			art.World.IXPs[c.Index].ID, c.ReachableCone, c.Members)
	}
}
