// Quickstart: run the whole validation-bias pipeline on a small
// synthetic Internet and print the headline numbers — how much of the
// inferred topology the "best-effort" validation data covers, and how
// classification correctness differs between the full data set and
// the Tier-1-to-transit class.
package main

import (
	"fmt"
	"log"

	"breval/internal/core"
)

func main() {
	scenario := core.DefaultScenario(42)
	scenario.NumASes = 4000 // finishes in a few seconds

	art, err := core.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("world:      %d ASes, %d ground-truth links\n",
		len(art.World.ASNs), art.World.Graph.NumLinks())
	fmt.Printf("observed:   %d paths from %d vantage points -> %d visible links\n",
		art.Paths.Len(), len(art.World.VPs), art.InferredLinkCount())
	fmt.Printf("validation: %d raw community-derived entries, %d after §4.2 cleaning (%.1f%% of visible links)\n\n",
		art.RawValidation.Len(), art.Validation.Len(),
		100*float64(art.Validation.Len())/float64(art.InferredLinkCount()))

	for _, algo := range []string{core.AlgoASRank, core.AlgoProbLink, core.AlgoTopoScope} {
		tab, err := art.TableFor(algo, 50)
		if err != nil {
			log.Fatal(err)
		}
		t1tr := "n/a"
		for _, row := range tab.Rows {
			if row.Class == "T1-TR" {
				t1tr = fmt.Sprintf("%.3f", row.Row.PPVP)
			}
		}
		fmt.Printf("%-10s overall P2P precision %.3f | T1-TR P2P precision %s\n",
			algo, tab.Total.PPVP, t1tr)
	}
	fmt.Println("\nThe drop from the overall precision to the T1-TR class is the")
	fmt.Println("paper's headline finding; run cmd/breval for every table and figure.")
}
