// Spoofguard reproduces the motivating example of §2: an IXP-side
// spoofed-packet detector (after Müller et al., CoNEXT'19) that flags
// a packet as spoofed when its source address does not belong to the
// customer cone of the member that sent it.
//
// The detector's cone is built from *inferred* relationships. Every
// P2C link that an algorithm misclassifies as P2P removes a subtree
// from some member's cone, and all traffic legitimately sourced there
// gets falsely flagged. This example quantifies those false flags per
// algorithm against the ground-truth cones.
package main

import (
	"fmt"
	"log"
	"sort"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/core"
)

func main() {
	scenario := core.DefaultScenario(11)
	scenario.NumASes = 2000

	art, err := core.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}

	// Pick the largest IXP as the deployment site.
	ixps := art.World.IXPs
	sort.Slice(ixps, func(i, j int) bool { return len(ixps[i].Members) > len(ixps[j].Members) })
	ixp := ixps[0]
	fmt.Printf("deploying the spoofing detector at IXP %d (%s, %d members)\n\n",
		ixp.ID, ixp.Region.Abbrev(), len(ixp.Members))

	// Ground-truth cones decide which (member, source) pairs are
	// legitimate.
	truthCones := make(map[asn.ASN]map[asn.ASN]bool, len(ixp.Members))
	for _, m := range ixp.Members {
		truthCones[m] = art.World.Graph.CustomerCone(m)
	}

	fmt.Println("algorithm   legitimate pairs   falsely flagged   rate")
	fmt.Println("---------   ----------------   ---------------   ------")
	for _, algo := range []string{core.AlgoASRank, core.AlgoProbLink, core.AlgoTopoScope, core.AlgoGao} {
		res := art.Results[algo]
		g := asgraph.New()
		for l, rel := range res.Rels {
			if err := g.SetRel(l.A, l.B, rel); err != nil {
				log.Fatal(err)
			}
		}
		legit, flagged := 0, 0
		for _, m := range ixp.Members {
			inferred := g.CustomerCone(m)
			for src := range truthCones[m] {
				legit++
				// The member itself may always source its own traffic.
				if src != m && !inferred[src] {
					flagged++
				}
			}
		}
		rate := 0.0
		if legit > 0 {
			rate = float64(flagged) / float64(legit)
		}
		fmt.Printf("%-11s %16d   %15d   %5.2f%%\n", algo, legit, flagged, 100*rate)
	}

	fmt.Println("\nEvery falsely flagged pair is legitimate customer traffic that the")
	fmt.Println("IXP would report as spoofed — the reputational damage §2 warns about.")
}
