// Casestudy replays §6.1 — the AS714 (Cogent) analysis — on a
// synthetic Internet: find the Tier-1 involved in most of the
// validated-P2C links that ASRank wrongly infers as P2P, verify that
// no observed path carries the clique triplet the algorithm would
// need, and query the simulated looking glass for the routing cause
// (partial-transit communities vs inaccurate validation data).
package main

import (
	"fmt"
	"log"
	"os"

	"breval/internal/core"
)

func main() {
	scenario := core.DefaultScenario(1)
	scenario.NumASes = 4000
	scenario.Algorithms = []string{core.AlgoASRank}

	art, err := core.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}
	if err := art.RenderCaseStudy(os.Stdout, core.AlgoASRank); err != nil {
		log.Fatal(err)
	}

	rep, err := art.CaseStudy(core.AlgoASRank)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-link diagnosis of the focus AS's target links:")
	for i, tl := range rep.Targets {
		if i == 12 {
			fmt.Printf("  ... and %d more\n", len(rep.Targets)-i)
			break
		}
		fmt.Printf("  %-16s clique triplet: %-5v cause: %s\n",
			tl.Link, tl.HasCliqueTriplet, tl.Cause)
	}

	fmt.Println("\nwhat the communities on the focus AS's routes look like at the")
	fmt.Println("looking glass (the 174:990-style no-export-to-peers tag):")
	shown := 0
	for _, tl := range rep.Targets {
		if shown == 3 {
			break
		}
		x := tl.Link.Other(tl.Tier1)
		rel, _ := art.World.Graph.RelOn(tl.Link)
		if rel.PartialTransit {
			fmt.Printf("  routes from AS%d at AS%d carry %d:990 (no-export-to-peers)\n",
				x, tl.Tier1, tl.Tier1)
			shown++
		}
	}
}
