package breval

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/bias"
	"breval/internal/govern"
	"breval/internal/inference/asrank"
	"breval/internal/inference/features"
	"breval/internal/topogen"
)

// The xl tier drives a 100k-AS, multi-million-link world through the
// streaming dense pipeline (block propagation -> shard-by-shard
// feature cleaning -> inference -> bias report) and asserts two scale
// properties the default suite cannot see: the output is byte-identical
// at any worker count, and peak RSS stays under the hard memory
// watermark. It is opt-in via BREVAL_XL=1 — a full run takes minutes —
// and scripts/bench.sh -size xl / the check.sh xl smoke set that up.
//
// Propagation cost is bounded by a deterministic stride sample of
// origins (the world, the graph, and every vantage point are still
// full-scale); the sample is part of the tier's identity, so digests
// are comparable across runs and machines.
const (
	xlNumASes     = 100_000
	xlSeed        = 1
	xlOriginCount = 1200
	// xlMinLinks is the acceptance floor for the world's link count.
	xlMinLinks = 2_000_000
	// xlDefaultHardMB is the peak-RSS budget (overridable with
	// BREVAL_XL_HARD_MB), matching the watermark tier a production
	// -mem-hard-mb deployment of this world size would configure. The
	// streamed pipeline's live set peaks around 0.7 GB; the rest of the
	// budget is GC headroom and runtime overhead.
	xlDefaultHardMB = 1792
)

var (
	xlOnce sync.Once
	xlW    *topogen.World
	xlErr  error
)

func xlGate(tb testing.TB) {
	tb.Helper()
	if os.Getenv("BREVAL_XL") != "1" {
		tb.Skip("xl tier disabled; set BREVAL_XL=1 (see scripts/bench.sh -size xl)")
	}
}

// xlConfig densifies the calibrated defaults: at 100k ASes the stock
// knobs yield ~1.35M links, while the xl tier wants a >=2M-link
// universe (multi-homing and open peering grow superlinearly with AS
// count on the real Internet, which the linear Scaled() cannot model).
func xlConfig() topogen.Config {
	cfg := topogen.DefaultConfig(xlSeed).Scaled(xlNumASes)
	cfg.StubProviderMin, cfg.StubProviderMax = 2, 3
	cfg.TransitProviderMin, cfg.TransitProviderMax = 2, 4
	for t, p := range cfg.PeerProb {
		cfg.PeerProb[t] = p * 1.3
	}
	return cfg
}

func xlWorld(tb testing.TB) *topogen.World {
	tb.Helper()
	xlOnce.Do(func() {
		start := time.Now()
		xlW, xlErr = topogen.Generate(xlConfig())
		if xlErr == nil {
			fmt.Printf("xl: world ready in %v: %d ASes, %d links, %d VPs\n",
				time.Since(start).Round(time.Millisecond),
				len(xlW.ASNs), xlW.Graph.NumLinks(), len(xlW.VPs))
		}
	})
	if xlErr != nil {
		tb.Fatalf("xl world: %v", xlErr)
	}
	return xlW
}

// xlOrigins samples every len/xlOriginCount-th AS, deterministically.
func xlOrigins(w *topogen.World) []asn.ASN {
	if len(w.ASNs) <= xlOriginCount {
		return w.ASNs
	}
	stride := len(w.ASNs) / xlOriginCount
	out := make([]asn.ASN, 0, xlOriginCount)
	for i := 0; i < len(w.ASNs) && len(out) < xlOriginCount; i += stride {
		out = append(out, w.ASNs[i])
	}
	return out
}

func xlHardMB() int64 {
	if v := os.Getenv("BREVAL_XL_HARD_MB"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return xlDefaultHardMB
}

// peakRSSMB reads the process's high-water resident set (Linux
// reports ru_maxrss in KiB).
func peakRSSMB() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Maxrss / 1024
}

// xlRunStreaming is one end-to-end pass: block-streamed propagation
// feeding the stream collector (the raw universe is never materialised
// in full), dense feature finish, ASRank inference, and the regional
// bias report. Returns a digest over every link, relationship, and
// report row.
func xlRunStreaming(tb testing.TB, w *topogen.World, origins []asn.ASN, workers int) uint64 {
	tb.Helper()
	// Governed the way a production -mem-hard-mb deployment runs: the
	// hard watermark is wired into the Go runtime's memory limit, so
	// the GC defends the envelope instead of pacing the heap to twice
	// the live set. The budget is 3/4 of the RSS watermark — the
	// remainder absorbs runtime overhead and allocator fragmentation
	// that the limit does not govern. Governor decisions only ever
	// change pacing, never bytes of output (the digest equality across
	// worker counts below is the proof).
	g := govern.New(govern.Config{
		SoftBytes:  1 << 50,
		HardBytes:  (xlHardMB() << 20) / 4 * 3,
		MaxWorkers: workers,
	})
	ctx := govern.Into(context.Background(), g)
	g.Start(ctx)
	defer g.Stop()

	sim := bgp.NewSimulator(w.Graph)
	sc := features.NewStreamCollector()
	so, sv, err := sim.PropagateBlocks(ctx, origins, w.VPs, func(blk *bgp.PathSet) error {
		return sc.Feed(ctx, blk)
	})
	if err != nil {
		tb.Fatalf("xl propagate (workers=%d): %v", workers, err)
	}
	fs, err := sc.Finish(ctx)
	if err != nil {
		tb.Fatalf("xl features (workers=%d): %v", workers, err)
	}
	// Inference streams the dense mirror block by block; the ASN-typed
	// arena is dropped first, exactly like the pipeline does for
	// dense-only algorithm selections — the digest keeps reporting the
	// path count through the surviving counter.
	fs.ReleasePaths()
	res := asrank.New(asrank.Options{}).Infer(fs)
	stats := bias.Imbalance(fs.Intern, nil, bias.NewRegionClassifier(w.Mapper()))

	h := fnv.New64a()
	fmt.Fprintf(h, "links=%d paths=%d skipped=%d/%d\n", fs.NumLinks(), fs.PathCount, so, sv)
	tab := fs.Intern
	for lid := int32(0); lid < int32(tab.NumLinks()); lid++ {
		l := tab.Link(lid)
		rel, ok := res.Rel(l)
		fmt.Fprintf(h, "%d-%d vp=%d rel=%v/%d/%d\n", l.A, l.B, fs.VPCountOf(l), ok, rel.Type, rel.Provider)
	}
	for _, st := range stats {
		fmt.Fprintf(h, "%s %d %.9f\n", st.Class, st.Links, st.Share)
	}
	return h.Sum64()
}

// TestXLWorldStreaming is the xl acceptance test: the 100k-AS world
// clears the 2M-link floor, the streamed pipeline is byte-identical
// for worker counts {1, 4, GOMAXPROCS}, and peak RSS stays under the
// hard watermark.
func TestXLWorldStreaming(t *testing.T) {
	xlGate(t)
	w := xlWorld(t)
	if n := w.Graph.NumLinks(); n < xlMinLinks {
		t.Fatalf("xl world has %d links, want >= %d", n, xlMinLinks)
	}
	origins := xlOrigins(w)

	workers := []int{1, 4, runtime.GOMAXPROCS(0)}
	digests := make(map[int]uint64)
	var first uint64
	for i, nw := range workers {
		if _, done := digests[nw]; done {
			continue
		}
		start := time.Now()
		d := xlRunStreaming(t, w, origins, nw)
		digests[nw] = d
		t.Logf("workers=%d digest=%016x elapsed=%v peakRSS=%dMB",
			nw, d, time.Since(start).Round(time.Millisecond), peakRSSMB())
		if i == 0 {
			first = d
		} else if d != first {
			t.Errorf("digest mismatch: workers=%d got %016x, workers=%d got %016x",
				nw, d, workers[0], first)
		}
	}

	hard := xlHardMB()
	if peak := peakRSSMB(); peak > hard {
		t.Errorf("peak RSS %dMB exceeds hard watermark %dMB", peak, hard)
	}
}

// BenchmarkXLStreamingPipeline times one full streamed pass at
// GOMAXPROCS and reports peak RSS alongside ns/op, so the bench.sh xl
// baseline captures both the time and the memory envelope.
func BenchmarkXLStreamingPipeline(b *testing.B) {
	xlGate(b)
	w := xlWorld(b)
	origins := xlOrigins(w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := xlRunStreaming(b, w, origins, runtime.GOMAXPROCS(0)); d == 0 {
			b.Fatal("zero digest")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(peakRSSMB()), "peakRSS_MB")
}
