module breval

go 1.22
