package main

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// Per-client rate limiting sits in front of the global admission
// semaphore: admission bounds how much work the server does in total,
// while the per-client token buckets bound how much of that capacity
// any one caller can claim. Without them a single retry-looping client
// consumes every admission slot and the 429s it provokes starve the
// well-behaved callers behind it.

// maxRateBuckets bounds the bucket map so an attacker rotating client
// identities cannot grow server memory without bound. When full, the
// stalest bucket (oldest refill time) is evicted — a stale bucket is
// one that has had the longest time to refill, so evicting it forgives
// the least debt.
const maxRateBuckets = 4096

// rateBucket is one client's token bucket. Tokens refill continuously
// at the limiter's rate up to burst; each admitted request spends one.
type rateBucket struct {
	tokens float64
	last   time.Time // when tokens was last brought current
}

// rateLimiter is a mutex-guarded token-bucket table keyed by client
// identity. The clock is injectable so tests can drive refill
// deterministically.
type rateLimiter struct {
	rps   float64 // tokens added per second
	burst float64 // bucket capacity (also a new client's opening balance)
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*rateBucket
}

func newRateLimiter(rps float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rps:     rps,
		burst:   float64(burst),
		now:     time.Now,
		buckets: make(map[string]*rateBucket),
	}
}

// allow spends one token from key's bucket. When the bucket is empty
// it refuses and returns the whole-second wait after which one token
// will have refilled — the Retry-After hint (at least 1, capped at 60
// like the admission path's hint).
func (rl *rateLimiter) allow(key string) (ok bool, retryAfter int) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	b := rl.buckets[key]
	if b == nil {
		rl.evictLocked()
		b = &rateBucket{tokens: rl.burst, last: now}
		rl.buckets[key] = b
	} else {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(rl.burst, b.tokens+dt*rl.rps)
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	secs := int(math.Ceil((1 - b.tokens) / rl.rps))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return false, secs
}

// evictLocked makes room for one new bucket when the table is full by
// dropping the bucket with the oldest refill time.
func (rl *rateLimiter) evictLocked() {
	if len(rl.buckets) < maxRateBuckets {
		return
	}
	var oldestKey string
	var oldest time.Time
	first := true
	for k, b := range rl.buckets {
		if first || b.last.Before(oldest) {
			oldestKey, oldest, first = k, b.last, false
		}
	}
	delete(rl.buckets, oldestKey)
}

// size reports the live bucket count (the /metrics gauge).
func (rl *rateLimiter) size() int {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return len(rl.buckets)
}

// clientKey identifies the caller for rate-limiting purposes: the
// X-Client-Id header when present (lets callers behind one proxy be
// told apart, and cooperating fleets share a budget), otherwise the
// remote address with the ephemeral port stripped so one host's
// connections share a bucket.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-Id"); id != "" {
		return "id:" + id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "addr:" + r.RemoteAddr
	}
	return "addr:" + host
}
