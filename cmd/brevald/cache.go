package main

import (
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Store-cache eviction: -cache-max-mb bounds the total size of the
// per-scenario checkpoint stores under <data-dir>/store. The daemon is
// crash-only, so the cache has no in-memory index to keep consistent —
// eviction is a sweep over the directory tree, run at startup (to
// recover a bounded footprint after any previous life) and after each
// completed run (the only time the cache grows).
//
// Eviction order is least-recently-used, approximated by the store
// directory's modification time: a run touches its store's contents
// while checkpointing, and a cache hit bumps the directory mtime
// explicitly (see cacheGet), so the mtime order is the use order. A
// store currently retained by an in-flight run or cache read is never
// evicted no matter how old — evicting under a reader would turn a
// cache hit into a torn artifact.

// retainStore marks a store directory in use; eviction skips it.
func (s *server) retainStore(dir string) {
	s.mu.Lock()
	s.stores[dir]++
	s.mu.Unlock()
}

// releaseStore drops one retention on a store directory.
func (s *server) releaseStore(dir string) {
	s.mu.Lock()
	if s.stores[dir]--; s.stores[dir] <= 0 {
		delete(s.stores, dir)
	}
	s.mu.Unlock()
}

// storeUsage is one store directory as the sweeper sees it.
type storeUsage struct {
	dir   string
	bytes int64
	used  time.Time // latest mtime under the directory
}

// sweepCache evicts least-recently-used store directories until the
// cache fits the configured budget. Best-effort by design: a store
// that cannot be statted or removed is skipped, never fatal — the
// next sweep retries it.
func (s *server) sweepCache() {
	if s.cfg.cacheMaxBytes <= 0 || s.cfg.dataDir == "" {
		return
	}
	root := filepath.Join(s.cfg.dataDir, "store")
	entries, err := os.ReadDir(root)
	if err != nil {
		return
	}
	var stores []storeUsage
	var total int64
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		u := measureStore(filepath.Join(root, e.Name()))
		total += u.bytes
		stores = append(stores, u)
	}
	if total <= s.cfg.cacheMaxBytes {
		return
	}
	sort.Slice(stores, func(i, j int) bool { return stores[i].used.Before(stores[j].used) })

	// Snapshot the in-flight set once; a store retained after this
	// point belongs to a run that started after the sweep began, and
	// its bytes were not part of the measured total anyway.
	s.mu.Lock()
	inFlight := make(map[string]bool, len(s.stores))
	for dir := range s.stores {
		inFlight[dir] = true
	}
	s.mu.Unlock()

	for _, u := range stores {
		if total <= s.cfg.cacheMaxBytes {
			break
		}
		if inFlight[u.dir] {
			continue
		}
		if err := os.RemoveAll(u.dir); err != nil {
			continue
		}
		total -= u.bytes
		s.col.Add("server.cache_evictions", 1)
		s.col.Add("server.cache_evicted_bytes", u.bytes)
	}
	s.col.SetGauge("server.cache_bytes", float64(total))
}

// measureStore sizes one store directory and finds its latest mtime.
func measureStore(dir string) storeUsage {
	u := storeUsage{dir: dir}
	if fi, err := os.Stat(dir); err == nil {
		u.used = fi.ModTime()
	}
	filepath.WalkDir(dir, func(_ string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return nil
		}
		if !d.IsDir() {
			u.bytes += fi.Size()
		}
		if fi.ModTime().After(u.used) {
			u.used = fi.ModTime()
		}
		return nil
	})
	return u
}
