package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"breval/internal/buildinfo"
	"breval/internal/core"
	"breval/internal/govern"
	"breval/internal/obs"
	"breval/internal/resilience"
	"breval/internal/runconfig"
	"breval/internal/wire"
)

// smallBody is the cheap end-to-end request every pipeline-running
// test uses: the smallest world the suite runs elsewhere, one cheap
// experiment, one algorithm.
const smallBody = `{"seed":5,"ases":600,"only":["clean"],"algos":["ASRank"]}`

func newTestServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(cfg)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(func() {
		ts.Close()
		s.stop()
	})
	return s, ts
}

func postRun(t *testing.T, url, body string) (int, runResponse) {
	t.Helper()
	resp, err := http.Post(url+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer resp.Body.Close()
	var rr runResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatalf("decode /run response: %v", err)
	}
	return resp.StatusCode, rr
}

// TestRunEndpointCacheAndRestart is the tentpole property in miniature:
// a run computes once, an identical request is served byte-identically
// from cache, and a fresh server over the same data dir — a restart —
// still serves the same bytes without recomputing.
func TestRunEndpointCacheAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	dir := t.TempDir()
	_, ts := newTestServer(t, serverConfig{dataDir: dir, maxRuns: 2})

	code, first := postRun(t, ts.URL, smallBody)
	if code != http.StatusOK {
		t.Fatalf("first run: %d %+v", code, first)
	}
	if first.Cached || first.Output == "" || first.ConfigHash == "" {
		t.Fatalf("first run: cached=%v output=%dB hash=%q", first.Cached, len(first.Output), first.ConfigHash)
	}

	code, second := postRun(t, ts.URL, smallBody)
	if code != http.StatusOK || !second.Cached {
		t.Fatalf("second run not served from cache: %d cached=%v", code, second.Cached)
	}
	if second.Output != first.Output {
		t.Fatal("cached output differs from computed output")
	}

	// Restart: a new server instance over the same data dir.
	_, ts2 := newTestServer(t, serverConfig{dataDir: dir, maxRuns: 2})
	code, third := postRun(t, ts2.URL, smallBody)
	if code != http.StatusOK || !third.Cached || third.Output != first.Output {
		t.Fatalf("restarted server: %d cached=%v identical=%v",
			code, third.Cached, third.Output == first.Output)
	}

	// A semantically different request must not hit the same cache
	// entry.
	code, other := postRun(t, ts2.URL, `{"seed":6,"ases":600,"only":["clean"],"algos":["ASRank"]}`)
	if code != http.StatusOK || other.Cached {
		t.Fatalf("different config served from cache: %d cached=%v", code, other.Cached)
	}
	if other.Output == first.Output {
		t.Error("different seed produced identical output")
	}
}

// TestConcurrentClientsCoalesce: N concurrent identical requests,
// capacity 1. Coalescing must hand every client the one run's result —
// all 200, byte-identical — while the pipeline executes once.
func TestConcurrentClientsCoalesce(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	s, ts := newTestServer(t, serverConfig{dataDir: t.TempDir(), maxRuns: 1})

	const clients = 6
	var wg sync.WaitGroup
	outputs := make([]string, clients)
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(smallBody))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var rr runResponse
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				t.Errorf("client %d: decode: %v", i, err)
				return
			}
			codes[i] = resp.StatusCode
			outputs[i] = rr.Output
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Errorf("client %d: status %d", i, codes[i])
		}
		if outputs[i] == "" || outputs[i] != outputs[0] {
			t.Errorf("client %d: output differs (len %d vs %d)", i, len(outputs[i]), len(outputs[0]))
		}
	}
	if s.col.Counter("server.coalesced")+s.col.Counter("server.cache_hits") == 0 {
		t.Error("no request coalesced or cache-hit; every client ran the pipeline")
	}
	if got := s.col.Counter("server.admitted"); got > 2 {
		t.Errorf("admitted %d pipeline runs for %d identical clients", got, clients)
	}
}

// TestAdmissionRefusal: with the admission semaphore full, a new run
// is refused 429 + Retry-After without touching the pipeline.
func TestAdmissionRefusal(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{maxRuns: 1})
	if !s.admit.TryAcquire() {
		t.Fatal("could not occupy the admission permit")
	}
	defer s.admit.Release()

	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(smallBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var rr runResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rr.Error, "capacity") {
		t.Errorf("refusal body: %+v", rr)
	}
	if got := s.col.Counter("server.admission_refused"); got != 1 {
		t.Errorf("admission_refused counter = %d, want 1", got)
	}
}

// TestShedRefusal drives the shared governor over its hard watermark
// with a controlled memory sample: new runs get 429, readiness goes
// 503, and — because server governors recover — admission returns once
// the pressure clears.
func TestShedRefusal(t *testing.T) {
	sample := int64(10)
	sampleMu := sync.Mutex{}
	read := func() int64 { sampleMu.Lock(); defer sampleMu.Unlock(); return sample }
	set := func(v int64) { sampleMu.Lock(); defer sampleMu.Unlock(); sample = v }

	s, ts := newTestServer(t, serverConfig{maxRuns: 1, govern: govern.Config{
		SoftBytes: 100,
		HardBytes: 200,
		Poll:      time.Millisecond,
		Sample:    read,
	}})

	set(500)
	waitFor(t, "governor shed", func() bool { return s.gov.Shed() })

	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(smallBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("run while shedding: %d, want 429", resp.StatusCode)
	}
	if r2, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, r2.Body)
		r2.Body.Close()
		if r2.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("readyz while shedding: %d, want 503", r2.StatusCode)
		}
	}
	// Liveness is unaffected.
	if r3, err := http.Get(ts.URL + "/healthz"); err != nil || r3.StatusCode != http.StatusOK {
		t.Fatalf("healthz while shedding: %v %v", err, r3)
	} else {
		io.Copy(io.Discard, r3.Body)
		r3.Body.Close()
	}

	// Pressure clears; the server governor leaves shed and admits again.
	set(10)
	waitFor(t, "governor recovery", func() bool { return !s.gov.Shed() })
	if r4, err := http.Get(ts.URL + "/readyz"); err != nil || r4.StatusCode != http.StatusOK {
		t.Fatalf("readyz after recovery: %v %v", err, r4)
	} else {
		io.Copy(io.Discard, r4.Body)
		r4.Body.Close()
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRequestTimeout504: an unmeetable deadline yields 504 carrying
// the partial stage report, not a hung request or a bare 500.
func TestRequestTimeout504(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{maxRuns: 1})
	code, rr := postRun(t, ts.URL, `{"ases":600,"only":["clean"],"algos":["ASRank"],"timeout":"1ns"}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%+v)", code, rr)
	}
	if !strings.Contains(rr.Error, "deadline") {
		t.Errorf("error does not name the deadline: %q", rr.Error)
	}
	if rr.Report == nil {
		t.Error("504 without the partial run report")
	}
}

// TestDrainRefusesNewWork: draining flips readiness and refuses new
// runs 503 while liveness stays green.
func TestDrainRefusesNewWork(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{maxRuns: 1})
	s.beginDrain()

	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(smallBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run while draining: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	for path, want := range map[string]int{"/healthz": 200, "/readyz": 503} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != want {
			t.Errorf("%s while draining: %d, want %d", path, r.StatusCode, want)
		}
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{maxRuns: 1})
	for name, body := range map[string]string{
		"malformed":     `{"seed":`,
		"unknown field": `{"sedd":1}`,
		"bad policy":    `{"policy":"maybe"}`,
		"host field":    `{"checkpoint_dir":"/etc"}`,
	} {
		code, rr := postRun(t, ts.URL, body)
		if code != http.StatusBadRequest || rr.Error == "" {
			t.Errorf("%s: %d %+v, want 400 with error", name, code, rr)
		}
	}
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: %d, want 405", resp.StatusCode)
	}
}

func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{maxRuns: 1})
	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info buildinfo.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("version is not JSON: %v", err)
	}
	if info.GoVersion == "" || info.Module == "" {
		t.Errorf("incomplete version info: %+v", info)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{maxRuns: 1})
	// Produce at least one counted request (a cheap 400).
	code, _ := postRun(t, ts.URL, `{"policy":"maybe"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("setup request: %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc obs.Document
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("metrics is not JSON: %v", err)
	}
	if doc.Counters["server.requests"] < 1 || doc.Counters["server.bad_requests"] < 1 {
		t.Errorf("request counters missing: %v", doc.Counters)
	}
	if _, ok := doc.Gauges["server.worker_limit"]; !ok {
		t.Errorf("worker-limit gauge missing: %v", doc.Gauges)
	}
}

// helperEnv carries the daemon argv into the re-exec'd test binary:
// when set, the test functions below become the daemon process itself
// (the cmd/breval crash-test pattern).
const helperEnv = "BREVALD_HELPER_ARGS"

func runHelper(t *testing.T, testName string, args ...string) (*exec.Cmd, string, *bufio.Scanner) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run="+testName+"$")
	cmd.Env = append(os.Environ(), helperEnv+"="+strings.Join(args, " "))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The daemon prints its bound address once the listener is up.
	sc := bufio.NewScanner(stderr)
	re := regexp.MustCompile(`listening on (\S+)`)
	for sc.Scan() {
		if m := re.FindStringSubmatch(sc.Text()); m != nil {
			return cmd, m[1], sc
		}
	}
	out, _ := cmd.CombinedOutput()
	t.Fatalf("daemon never reported its listen address (%v)\n%s", cmd.Wait(), out)
	return nil, "", nil
}

// TestSIGTERMDrainExitsZero: the documented drain contract end to end
// over a real process — SIGTERM, stop admitting, exit 0.
func TestSIGTERMDrainExitsZero(t *testing.T) {
	if args := os.Getenv(helperEnv); args != "" {
		os.Exit(run(strings.Fields(args), os.Stdout, os.Stderr))
	}
	cmd, _, sc := runHelper(t, "TestSIGTERMDrainExitsZero", "-addr", "127.0.0.1:0")
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	drained := false
	for sc.Scan() {
		if strings.Contains(sc.Text(), "drained cleanly") {
			drained = true
		}
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("drain exit: %v, want 0", err)
	}
	if !drained {
		t.Error("daemon exited 0 without reporting a clean drain")
	}
}

// TestCrashRestartByteIdentical is the crash-only acceptance property
// over HTTP: kill the daemon (exit 7 via the crash hook — a stand-in
// for kill -9) mid-request right after the path set checkpoints, then
// restart over the same data dir and require the replayed request to
// produce bytes identical to a never-crashed server's.
func TestCrashRestartByteIdentical(t *testing.T) {
	if args := os.Getenv(helperEnv); args != "" {
		os.Exit(run(strings.Fields(args), os.Stdout, os.Stderr))
	}
	if testing.Short() {
		t.Skip("runs the pipeline in subprocesses")
	}
	dir := t.TempDir()

	cmd, addr, _ := runHelper(t, "TestCrashRestartByteIdentical",
		"-addr", "127.0.0.1:0", "-data-dir", dir, "-kill-after", "paths")
	// The daemon dies mid-request; the POST fails at the transport
	// level, which is the point.
	resp, postErr := http.Post("http://"+addr+"/run", "application/json", strings.NewReader(smallBody))
	if postErr == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	var ee *exec.ExitError
	if err := cmd.Wait(); !errors.As(err, &ee) || ee.ExitCode() != resilience.CrashExitCode {
		t.Fatalf("crashed daemon exit: %v, want code %d", err, resilience.CrashExitCode)
	}

	// Restart over the same data dir (in-process this time) and replay.
	_, ts := newTestServer(t, serverConfig{dataDir: dir, maxRuns: 1})
	code, resumed := postRun(t, ts.URL, smallBody)
	if code != http.StatusOK || resumed.Output == "" {
		t.Fatalf("replayed request after restart: %d %+v", code, resumed)
	}

	// A server that never crashed must produce the same bytes.
	_, tsCold := newTestServer(t, serverConfig{dataDir: t.TempDir(), maxRuns: 1})
	codeCold, cold := postRun(t, tsCold.URL, smallBody)
	if codeCold != http.StatusOK {
		t.Fatalf("cold run: %d", codeCold)
	}
	if resumed.Output != cold.Output {
		t.Errorf("resumed output differs from cold run (%d vs %d bytes)",
			len(resumed.Output), len(cold.Output))
	}

	// And the replay is now cached: a third identical request is a hit.
	code, again := postRun(t, ts.URL, smallBody)
	if code != http.StatusOK || !again.Cached || again.Output != cold.Output {
		t.Fatalf("post-resume cache: %d cached=%v identical=%v",
			code, again.Cached, again.Output == cold.Output)
	}
}

// TestEffectiveTimeout pins the deadline-clamping rule.
func TestEffectiveTimeout(t *testing.T) {
	cases := []struct{ req, ceil, want time.Duration }{
		{0, 0, 0},
		{0, time.Minute, time.Minute},
		{time.Second, 0, time.Second},
		{time.Second, time.Minute, time.Second},
		{time.Hour, time.Minute, time.Minute},
	}
	for _, c := range cases {
		if got := effectiveTimeout(c.req, c.ceil); got != c.want {
			t.Errorf("effectiveTimeout(%v, %v) = %v, want %v", c.req, c.ceil, got, c.want)
		}
	}
}

// TestRetryAfterTracksPressure pins the derived Retry-After hint: it
// grows with the number of admitted runs, scales with governor state,
// has a 10s floor while shedding, and never exceeds the 60s cap.
func TestRetryAfterTracksPressure(t *testing.T) {
	s := newServer(serverConfig{maxRuns: 4})
	t.Cleanup(s.stop)

	if got := s.retryAfterSecs(); got != 1 {
		t.Errorf("idle retryAfterSecs = %d, want 1", got)
	}
	if !s.admit.TryAcquire() || !s.admit.TryAcquire() {
		t.Fatal("could not occupy admission permits")
	}
	defer s.admit.Release()
	defer s.admit.Release()
	if got := s.retryAfterSecs(); got != 3 {
		t.Errorf("retryAfterSecs with 2 in flight = %d, want 3", got)
	}

	// A refusal's header must carry the same hint it embeds in the body.
	res := refused("h", "server at capacity", s.retryAfterSecs())
	rec := httptest.NewRecorder()
	s.writeResult(rec, res)
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After header = %q, want \"3\"", got)
	}
	if !strings.Contains(res.resp.Error, "retry-after: 3s") {
		t.Errorf("embedded hint missing: %q", res.resp.Error)
	}
}

// TestRetryAfterShedFloor drives a governor into shed and checks the
// 10-second floor applies.
func TestRetryAfterShedFloor(t *testing.T) {
	sample := int64(500)
	s := newServer(serverConfig{maxRuns: 1, govern: govern.Config{
		SoftBytes: 100,
		HardBytes: 200,
		Poll:      time.Millisecond,
		Sample:    func() int64 { return sample },
	}})
	t.Cleanup(s.stop)
	deadline := time.Now().Add(5 * time.Second)
	for !s.gov.Shed() {
		if time.Now().After(deadline) {
			t.Fatal("governor never shed")
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.retryAfterSecs(); got < 10 || got > 60 {
		t.Errorf("shed retryAfterSecs = %d, want in [10, 60]", got)
	}
}

// TestCacheSweepEvictsLRU: sweepCache removes least-recently-used
// store directories until the cache fits the budget, never touching a
// retained (in-flight) store.
func TestCacheSweepEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	root := filepath.Join(dir, "store")
	mk := func(name string, size int, age time.Duration) string {
		p := filepath.Join(root, name)
		if err := os.MkdirAll(p, 0o755); err != nil {
			t.Fatal(err)
		}
		f := filepath.Join(p, "artifact")
		if err := os.WriteFile(f, make([]byte, size), 0o644); err != nil {
			t.Fatal(err)
		}
		when := time.Now().Add(-age)
		if err := os.Chtimes(f, when, when); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, when, when); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldest := mk("aaa", 1<<20, 3*time.Hour)
	middle := mk("bbb", 1<<20, 2*time.Hour)
	newest := mk("ccc", 1<<20, time.Hour)

	// Budget fits two stores: only the oldest goes.
	s := newServer(serverConfig{dataDir: dir, maxRuns: 1, cacheMaxBytes: 2 << 20})
	defer s.stop()
	if _, err := os.Stat(oldest); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("startup sweep kept the oldest store: %v", err)
	}
	for _, p := range []string{middle, newest} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("sweep evicted a store within budget: %v", err)
		}
	}

	// Shrink the budget to one store, but retain the middle one as an
	// in-flight run would: only the (older) retained store's eviction
	// is skipped, so the sweep must take the newest instead... no —
	// it evicts in LRU order and skips retained: middle survives by
	// retention, newest survives because evicting middle's bytes was
	// skipped and newest eviction brings the total under budget.
	s.cfg.cacheMaxBytes = 1 << 19 // half a store: everything evictable must go
	s.retainStore(middle)
	s.sweepCache()
	if _, err := os.Stat(middle); err != nil {
		t.Fatalf("sweep evicted a retained store: %v", err)
	}
	if _, err := os.Stat(newest); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("sweep kept an unretained store past the budget")
	}
	s.releaseStore(middle)
	s.sweepCache()
	if _, err := os.Stat(middle); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("released store survived a sweep it no longer fits")
	}
}

// TestCacheSweepAfterRun: a bounded server evicts older stores as new
// runs land, and the store backing the latest run survives to serve
// its cached output.
func TestCacheSweepAfterRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	dir := t.TempDir()
	// Pre-seed a large stale store that cannot fit alongside any real
	// one.
	stale := filepath.Join(dir, "store", "stalestale0000")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, "blob"), make([]byte, 8<<20), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-24 * time.Hour)
	os.Chtimes(filepath.Join(stale, "blob"), old, old)
	os.Chtimes(stale, old, old)

	_, ts := newTestServer(t, serverConfig{dataDir: dir, maxRuns: 1, cacheMaxBytes: 6 << 20})
	code, first := postRun(t, ts.URL, smallBody)
	if code != http.StatusOK || first.Cached {
		t.Fatalf("first run: %d %+v", code, first)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("post-run sweep kept the stale store")
	}
	code, second := postRun(t, ts.URL, smallBody)
	if code != http.StatusOK || !second.Cached || second.Output != first.Output {
		t.Fatalf("run's own store did not survive the sweep: %d cached=%v", code, second.Cached)
	}
}

// TestRunEndpointRIBDigestKeyed: a rib_in request is served and cached
// by the dump's *content* — a renamed identical copy hits the cache, a
// client-supplied digest is rejected, a missing dump is a 400.
func TestRunEndpointRIBDigestKeyed(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	dir := t.TempDir()
	// Build a dump by running the simulated scenario first.
	_, ts := newTestServer(t, serverConfig{dataDir: dir, maxRuns: 1})
	if code, rr := postRun(t, ts.URL, smallBody); code != http.StatusOK {
		t.Fatalf("seed run: %d %+v", code, rr)
	} else if rr.Ingest != nil {
		t.Fatalf("simulator run response carries an ingest summary: %+v", rr.Ingest)
	}
	// Export the path set through the pipeline's own artifacts: easier
	// to just write a fresh dump with breval's writer via a direct run.
	scen := mustConfig(t, smallBody).Scenario()
	art, err := core.RunContext(context.Background(), scen)
	if err != nil {
		t.Fatal(err)
	}
	dump := filepath.Join(dir, "dump.rib")
	f, err := os.Create(dump)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteRIB(f, art.Paths, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	body := func(file string) string {
		b, _ := json.Marshal(map[string]any{
			"seed": 5, "ases": 600, "only": []string{"clean"}, "algos": []string{"ASRank"},
			"rib_in": []string{file},
		})
		return string(b)
	}
	code, first := postRun(t, ts.URL, body(dump))
	if code != http.StatusOK || first.Cached {
		t.Fatalf("ingest run: %d %+v", code, first.Error)
	}
	// The response surfaces the quarantine ledger: a clean dump is all
	// ingested, zero quarantined, within budget.
	if first.Ingest == nil {
		t.Fatal("ingest run response carries no ingest summary")
	}
	if first.Ingest.Records == 0 || first.Ingest.Ingested != first.Ingest.Records ||
		first.Ingest.Quarantined != 0 || first.Ingest.BudgetVerdict != "within" {
		t.Fatalf("ingest summary for a clean dump: %+v", first.Ingest)
	}

	// Renamed identical copy: same content digest, cache hit.
	copyPath := filepath.Join(dir, "renamed.rib")
	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(copyPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, second := postRun(t, ts.URL, body(copyPath))
	if code != http.StatusOK || !second.Cached || second.Output != first.Output {
		t.Fatalf("renamed copy missed the cache: %d cached=%v", code, second.Cached)
	}

	// A client-supplied digest must be rejected, and a missing dump is
	// a 400 at parse time, not a 500 mid-run.
	if code, _ := postRun(t, ts.URL, `{"rib_in":["x"],"rib_digest":"deadbeef"}`); code != http.StatusBadRequest {
		t.Fatalf("client-supplied digest: %d, want 400", code)
	}
	if code, rr := postRun(t, ts.URL, body(filepath.Join(dir, "missing.rib"))); code != http.StatusBadRequest {
		t.Fatalf("missing dump: %d %+v, want 400", code, rr.Error)
	}
}

// mustConfig parses a JSON runconfig body or fails the test.
func mustConfig(t *testing.T, body string) runconfig.Config {
	t.Helper()
	cfg, err := runconfig.ParseJSON([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}
