// Command brevald is the bias-analysis daemon: a crash-only HTTP/JSON
// front end over the same pipeline cmd/breval runs in batch, built for
// many concurrent, retried, partially-failing queries against one
// shared memory budget.
//
// Usage:
//
//	brevald [-addr HOST:PORT] [-data-dir DIR] [-max-runs N]
//	        [-cache-max-mb N] [-client-rps R] [-client-burst N]
//	        [-request-timeout D] [-drain-timeout D]
//	        [-mem-soft-mb N] [-mem-hard-mb N] [-stall-timeout D]
//	        [-metrics-out FILE] [-kill-after NAME] [-version]
//
// API (see docs/service.md for the full contract):
//
//	POST /run      — execute a run described by a JSON runconfig;
//	                 responds 200 with the rendered output, 429 when
//	                 the caller's -client-rps budget is spent or when
//	                 admission or the memory governor sheds the
//	                 request (Retry-After set), 504 with the partial
//	                 stage report when the deadline expires, 400 on a
//	                 bad config, 503 while draining.
//	GET  /healthz  — liveness: 200 while the process serves.
//	GET  /readyz   — readiness: 503 while draining or shedding.
//	GET  /metrics  — the server's obs metrics document as JSON.
//	GET  /version  — module version, VCS revision, go toolchain.
//
// Requests are admission-controlled (-max-runs concurrent runs; every
// run's workers draw from one shared governor permit pool) and
// deadline-bounded (the smaller of the request's own timeout and
// -request-timeout). With -data-dir each run checkpoints into a store
// keyed by its configuration and rendered outputs are cached by config
// hash, so an identical request — including one replayed after a
// kill -9 mid-run and restart — is served byte-identically, resuming
// whatever stage artifacts the killed run saved. Identical in-flight
// requests coalesce onto one pipeline execution. -cache-max-mb bounds
// the total size of those stores: least-recently-used stores are
// evicted at startup and after each completed run, never while a run
// or cache read holds them.
//
// A request with "rib_in" runs the real-data ingestion front end
// (docs/ingestion.md) instead of simulated propagation. Such runs are
// cache-keyed by the dump files' content digest — resolved server-side
// from the local files, never accepted from the request — so renamed
// copies hit the cache and swapped contents never alias.
//
// On SIGTERM/SIGINT the daemon drains: it stops admitting (readyz
// 503, new runs 503), lets in-flight runs finish — they have been
// checkpointing at every stage boundary all along — flushes the
// metrics document (-metrics-out), and exits 0. A drain that outlives
// -drain-timeout force-cancels the remaining runs and exits 9.
//
// Exit codes: 0 clean drain, 1 fatal (bad flags, listen failure), 9
// drain-timeout (see the server table in docs/resilience.md).
// -kill-after is the same crash-testing hook as cmd/breval's: the
// process dies with code 7 as soon as the named artifact is durably
// checkpointed, standing in for kill -9.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"breval/internal/buildinfo"
	"breval/internal/govern"
	"breval/internal/resilience"
)

// Server exit codes (documented in docs/resilience.md). exitDrainTimeout
// never aliases the run-mode codes (3, 7, 8): a supervisor reading 9
// knows in-flight work was abandoned mid-drain, not failed.
const (
	exitFatal        = 1
	exitDrainTimeout = 9
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the daemon lifecycle: flags, listen, serve, drain. Split from
// main (and signature-stable with the tests) so the exit-code contract
// is testable without a subprocess for everything.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("brevald", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8478", "listen address")
	dataDir := fs.String("data-dir", "", "checkpoint/cache root; empty disables the durable result cache")
	cacheMaxMB := fs.Int64("cache-max-mb", 0, "total size budget for the store cache under -data-dir in MiB; least-recently-used stores are evicted at startup and after each run (0 = unbounded)")
	maxRuns := fs.Int("max-runs", 2, "maximum concurrently admitted runs; excess requests get 429")
	clientRPS := fs.Float64("client-rps", 0, "per-client /run rate limit in requests per second, keyed by X-Client-Id or remote address; excess requests get 429 before admission (0 = off)")
	clientBurst := fs.Int("client-burst", 5, "per-client burst allowance above -client-rps (token-bucket capacity)")
	reqTimeout := fs.Duration("request-timeout", 15*time.Minute, "server-side ceiling on a run's deadline (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight runs before force-cancelling and exiting 9")
	memSoftMB := fs.Int64("mem-soft-mb", 0, "soft memory watermark in MiB shared across all runs (0 = off)")
	memHardMB := fs.Int64("mem-hard-mb", 0, "hard memory watermark in MiB: crossing sheds new runs with 429 until pressure clears (0 = off)")
	stallTimeout := fs.Duration("stall-timeout", 0, "watchdog heartbeat deadline for supervised workers (0 = off)")
	metricsOut := fs.String("metrics-out", "", "write the server's final metrics document as JSON here on drain")
	killAfter := fs.String("kill-after", "", "crash testing: exit 7 right after artifact NAME is durably checkpointed")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return exitFatal
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.Get())
		return 0
	}
	if *maxRuns < 1 {
		fmt.Fprintln(stderr, "brevald: -max-runs must be at least 1")
		return exitFatal
	}
	if *memSoftMB < 0 || *memHardMB < 0 {
		fmt.Fprintln(stderr, "brevald: memory watermarks must be non-negative")
		return exitFatal
	}
	if *clientRPS < 0 || *clientBurst < 0 {
		fmt.Fprintln(stderr, "brevald: -client-rps and -client-burst must be non-negative")
		return exitFatal
	}
	if *cacheMaxMB < 0 {
		fmt.Fprintln(stderr, "brevald: -cache-max-mb must be non-negative")
		return exitFatal
	}
	if *cacheMaxMB > 0 && *dataDir == "" {
		fmt.Fprintln(stderr, "brevald: -cache-max-mb requires -data-dir (there is no cache to bound without one)")
		return exitFatal
	}
	if *memSoftMB > 0 && *memHardMB > 0 && *memHardMB <= *memSoftMB {
		fmt.Fprintf(stderr, "brevald: -mem-hard-mb (%d) must exceed -mem-soft-mb (%d)\n", *memHardMB, *memSoftMB)
		return exitFatal
	}
	if *killAfter != "" {
		if *dataDir == "" {
			fmt.Fprintln(stderr, "brevald: -kill-after requires -data-dir (a crash without a store saves nothing to resume from)")
			return exitFatal
		}
		resilience.InjectAt("checkpoint.saved."+*killAfter, resilience.Fault{Kind: resilience.KindCrash})
	}

	gcfg := govern.Config{
		SoftBytes:    *memSoftMB << 20,
		HardBytes:    *memHardMB << 20,
		StallTimeout: *stallTimeout,
	}
	// Shed recovery needs a soft watermark as its threshold; a
	// hard-only configuration recovers at half the hard watermark.
	if gcfg.HardBytes > 0 && gcfg.SoftBytes == 0 {
		gcfg.SoftBytes = gcfg.HardBytes / 2
	}

	srv := newServer(serverConfig{
		dataDir:        *dataDir,
		maxRuns:        *maxRuns,
		requestTimeout: *reqTimeout,
		cacheMaxBytes:  *cacheMaxMB << 20,
		clientRPS:      *clientRPS,
		clientBurst:    *clientBurst,
		govern:         gcfg,
	})

	// Register for drain signals before announcing the listener:
	// a supervisor that SIGTERMs the instant it sees the address must
	// hit the drain path, never the default kill action.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "brevald:", err)
		return exitFatal
	}
	httpSrv := &http.Server{Handler: srv.routes()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stderr, "brevald: listening on %s (max-runs %d, data-dir %q)\n",
		ln.Addr(), *maxRuns, *dataDir)
	select {
	case got := <-sig:
		fmt.Fprintf(stderr, "brevald: %v: draining (stop admitting, finish in-flight runs)\n", got)
	case err := <-serveErr:
		// The listener died without a signal: fatal.
		fmt.Fprintln(stderr, "brevald:", err)
		srv.stop()
		return exitFatal
	}

	// Drain sequence: stop admitting, bound the wait for in-flight
	// handlers, flush observability, and exit by the documented table.
	srv.beginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(ctx)

	flushMetrics(srv, *metricsOut, stderr)
	if shutdownErr != nil {
		// In-flight runs outlived the drain window: force-cancel them
		// (their checkpoints up to the last completed stage are already
		// durable) and report the unclean drain.
		fmt.Fprintln(stderr, "brevald: drain timeout: force-cancelling in-flight runs")
		srv.stop()
		httpSrv.Close()
		return exitDrainTimeout
	}
	srv.stop()
	fmt.Fprintln(stderr, "brevald: drained cleanly")
	return 0
}

// flushMetrics writes the server's final metrics document during
// drain, if asked for. Best-effort by design: a failed flush must not
// turn a clean drain into an unclean exit, so it only logs.
func flushMetrics(srv *server, path string, stderr *os.File) {
	srv.col.SnapshotMemStats("drain")
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, "brevald: flush metrics:", err)
		return
	}
	werr := srv.col.Export().WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintln(stderr, "brevald: flush metrics:", werr)
	}
}
