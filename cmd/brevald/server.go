package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"breval/internal/buildinfo"
	"breval/internal/checkpoint"
	"breval/internal/core"
	"breval/internal/govern"
	"breval/internal/ingest"
	"breval/internal/obs"
	"breval/internal/resilience"
	"breval/internal/runconfig"
)

// maxRequestBody bounds a /run request body; a config is a few hundred
// bytes, so anything near the limit is garbage.
const maxRequestBody = 1 << 20

// serverConfig is brevald's startup configuration (flags only — never
// request-controlled).
type serverConfig struct {
	dataDir        string
	maxRuns        int
	requestTimeout time.Duration
	cacheMaxBytes  int64   // store-cache size budget; 0 = unbounded
	clientRPS      float64 // per-client token refill rate; 0 disables
	clientBurst    int     // per-client bucket capacity
	govern         govern.Config
}

// server is the bias-analysis daemon: admission control in front of
// core.RunContext, one shared governor (memory budget + worker-permit
// pool) across all concurrent runs, a checkpoint-backed result cache
// keyed by config hash, and coalescing of identical in-flight
// requests.
type server struct {
	cfg serverConfig

	// gov is the single shared governor: injected into every run's
	// context so all pipelines draw inner-worker permits from one pool
	// and shed against one memory budget.
	gov *govern.Governor
	// admit is the run-admission semaphore. Deliberately a separate
	// Limiter from the governor's: an admitted run holds an admission
	// permit for its whole lifetime while its workers acquire and
	// release governor permits underneath — sharing one pool would
	// let N admitted runs starve their own workers into deadlock.
	admit *govern.Limiter
	// col is the server-lifetime metrics aggregate; per-request
	// collectors fold into it at request end (see obs.Collector.Fold).
	col *obs.Collector
	// rl is the per-client token-bucket table in front of admission;
	// nil when -client-rps is 0 (disabled).
	rl *rateLimiter

	// baseCtx outlives any single request, so a coalesced run is never
	// killed by its leader's client disconnecting; cancelRuns fires it
	// only when a drain deadline expires.
	baseCtx    context.Context
	cancelRuns context.CancelFunc

	draining atomic.Bool

	mu      sync.Mutex
	flights map[string]*flight
	// stores refcounts checkpoint-store directories currently held by a
	// run or a cache read; sweepCache never evicts a retained store.
	stores map[string]int
}

// flight is one in-progress run, shared by every request whose config
// hashes the same. The leader computes res then closes done.
type flight struct {
	done chan struct{}
	res  *runResult
}

// runResult is a finished (or refused) flight: the HTTP status and the
// response body every rider of the flight replays. retryAfter is the
// Retry-After hint in seconds for refusals (0 = derive at write time).
type runResult struct {
	code       int
	retryAfter int
	resp       runResponse
}

// runResponse is the /run response body.
type runResponse struct {
	ConfigHash   string                `json:"config_hash,omitempty"`
	Cached       bool                  `json:"cached,omitempty"`
	Coalesced    bool                  `json:"coalesced,omitempty"`
	Shed         bool                  `json:"shed,omitempty"`
	ElapsedMS    float64               `json:"elapsed_ms,omitempty"`
	Degraded     []string              `json:"degraded,omitempty"`
	FailedStages []string              `json:"failed_stages,omitempty"`
	Output       string                `json:"output,omitempty"`
	Error        string                `json:"error,omitempty"`
	Report       *resilience.RunReport `json:"report,omitempty"`
	Ingest       *ingestSummary        `json:"ingest,omitempty"`
}

// ingestSummary is the /run response's view of the quarantine ledger:
// the record counters, the per-kind quarantine breakdown, and the
// error-budget verdict. Present only for rib_in runs that actually
// read the dumps — simulator runs and cache hits carry no ledger.
type ingestSummary struct {
	Records     int64            `json:"records"`
	Ingested    int64            `json:"ingested"`
	Quarantined int64            `json:"quarantined"`
	BadFrac     float64          `json:"bad_frac"`
	Kinds       map[string]int64 `json:"kinds,omitempty"`
	Desyncs     int              `json:"desyncs,omitempty"`
	BudgetFrac  float64          `json:"budget_frac"`
	// BudgetVerdict is "within" or "exceeded" — the same verdict that
	// degrades the run's ingest.budget stage.
	BudgetVerdict string `json:"budget_verdict"`
}

// summarizeIngest folds an ingest report into the response summary.
func summarizeIngest(rep *ingest.Report, budget float64) *ingestSummary {
	sum := &ingestSummary{
		Records:       rep.Records,
		Ingested:      rep.Ingested,
		Quarantined:   rep.BadTotal(),
		BadFrac:       rep.BadFrac(),
		Desyncs:       rep.Desyncs,
		BudgetFrac:    budget,
		BudgetVerdict: "within",
	}
	if rep.Exceeded(budget) {
		sum.BudgetVerdict = "exceeded"
	}
	for _, k := range ingest.Kinds {
		if n := rep.Bad[k]; n > 0 {
			if sum.Kinds == nil {
				sum.Kinds = make(map[string]int64)
			}
			sum.Kinds[string(k)] = n
		}
	}
	return sum
}

func newServer(cfg serverConfig) *server {
	if cfg.maxRuns < 1 {
		cfg.maxRuns = 2
	}
	if cfg.govern.MaxWorkers <= 0 {
		cfg.govern.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	// A server governor must leave the shed state once pressure clears;
	// sticky shed would turn one bad request into a permanent 429.
	cfg.govern.ShedRecover = true
	ctx, cancel := context.WithCancel(context.Background())
	s := &server{
		cfg:        cfg,
		gov:        govern.New(cfg.govern),
		admit:      govern.NewLimiter(cfg.maxRuns),
		col:        obs.NewCollector(),
		baseCtx:    ctx,
		cancelRuns: cancel,
		flights:    make(map[string]*flight),
		stores:     make(map[string]int),
	}
	if cfg.clientRPS > 0 {
		s.rl = newRateLimiter(cfg.clientRPS, cfg.clientBurst)
	}
	// Startup sweep: recover a bounded cache footprint left by any
	// previous life of the daemon before admitting work.
	s.sweepCache()
	// The governor is created even with no watermarks configured: its
	// limiter is still the single worker-permit pool every concurrent
	// run draws from, which is what keeps N admitted runs from running
	// N × GOMAXPROCS workers.
	s.gov.Start(obs.Into(ctx, s.col))
	return s
}

// routes builds the daemon's handler table.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/version", s.handleVersion)
	return mux
}

// beginDrain flips the server to draining: /readyz goes 503 and new
// /run requests are refused. In-flight runs are untouched — the HTTP
// shutdown in main waits for them.
func (s *server) beginDrain() { s.draining.Store(true) }

// stop releases the server's background resources after the listener
// is down: the governor poll loop and (via baseCtx) any run the drain
// deadline abandoned.
func (s *server) stop() {
	s.cancelRuns()
	s.gov.Stop()
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// Liveness only: a draining or shedding server is still alive.
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.gov.Shed():
		http.Error(w, "shedding: hard memory watermark crossed", http.StatusServiceUnavailable)
	default:
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	}
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.col.SetGauge("server.admitted_in_use", float64(s.admit.InUse()))
	s.col.SetGauge("server.worker_limit", float64(s.gov.Limiter().Limit()))
	if s.rl != nil {
		s.col.SetGauge("server.rate_buckets", float64(s.rl.size()))
	}
	doc := s.col.Export()
	w.Header().Set("Content-Type", "application/json")
	doc.WriteJSON(w)
}

func (s *server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(buildinfo.Get())
}

// handleRun is POST /run: parse → cache → coalesce → admit → execute.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.col.Add("server.requests", 1)
	// Per-client limit first: it is the cheapest check and refusing
	// here keeps one hot client from even parsing its way toward the
	// shared cache, coalescing, and admission machinery.
	if s.rl != nil {
		if ok, retry := s.rl.allow(clientKey(r)); !ok {
			s.col.Add("server.rate_limited", 1)
			s.writeResult(w, &runResult{
				code:       http.StatusTooManyRequests,
				retryAfter: retry,
				resp: runResponse{Error: fmt.Sprintf(
					"client rate limit exceeded (retry-after: %ds)", retry)},
			})
			return
		}
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	cfg, err := runconfig.ParseJSON(body)
	if err != nil {
		s.col.Add("server.bad_requests", 1)
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Real-data runs are identified by what their dump files contain:
	// the digest is resolved server-side (the field is not accepted
	// from the request — a client-supplied digest could poison the
	// cache), so renamed-but-identical inputs hash alike and swapped
	// contents never alias.
	if err := cfg.ResolveRIB(); err != nil {
		s.col.Add("server.bad_requests", 1)
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	hash := cfg.Hash()

	if s.draining.Load() {
		s.writeResult(w, &runResult{
			code: http.StatusServiceUnavailable,
			resp: runResponse{Error: "server is draining"},
		})
		return
	}

	// Cache first: a finished run's bytes are served even while
	// shedding or at capacity — reads are cheap and shared.
	if out, ok := s.cacheGet(r.Context(), cfg, hash); ok {
		s.col.Add("server.cache_hits", 1)
		s.writeResult(w, &runResult{code: http.StatusOK, resp: runResponse{
			ConfigHash: hash, Cached: true, Output: out,
		}})
		return
	}

	// Coalesce: one flight per config hash; riders replay the leader's
	// result instead of re-running (or re-refusing) the work.
	s.mu.Lock()
	if f, ok := s.flights[hash]; ok {
		s.mu.Unlock()
		s.col.Add("server.coalesced", 1)
		select {
		case <-f.done:
			res := *f.res
			res.resp.Coalesced = true
			s.writeResult(w, &res)
		case <-r.Context().Done():
			s.writeError(w, http.StatusGatewayTimeout,
				"client deadline expired while awaiting a coalesced run")
		}
		return
	}
	f := &flight{done: make(chan struct{})}
	s.flights[hash] = f
	s.mu.Unlock()

	f.res = s.lead(cfg, hash)
	s.mu.Lock()
	delete(s.flights, hash)
	s.mu.Unlock()
	close(f.done)
	s.writeResult(w, f.res)
}

// lead admits and executes one flight as its leader.
func (s *server) lead(cfg runconfig.Config, hash string) *runResult {
	if s.gov.Shed() {
		s.col.Add("server.shed_refused", 1)
		return refused(hash, "load shed: hard memory watermark crossed, retry later", s.retryAfterSecs())
	}
	if !s.admit.TryAcquire() {
		s.col.Add("server.admission_refused", 1)
		return refused(hash, fmt.Sprintf("server at capacity (%d runs in flight), retry later", s.cfg.maxRuns), s.retryAfterSecs())
	}
	defer s.admit.Release()
	s.col.Add("server.admitted", 1)
	return s.execute(cfg, hash)
}

// retryAfterSecs derives the Retry-After hint from live pressure
// instead of a constant: the base is one second per admitted run
// (queued work drains roughly serially behind the shared worker
// pool), doubled under memory pressure, and at least 10s while
// shedding — retrying into a shed server only deepens the pressure
// that caused the shed. Capped at 60s so a refused client never backs
// off longer than a typical run.
func (s *server) retryAfterSecs() int {
	secs := 1 + s.admit.InUse()
	switch s.gov.State() {
	case govern.StatePressure:
		secs *= 2
	case govern.StateShed:
		secs *= 5
		if secs < 10 {
			secs = 10
		}
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// refused builds the 429 result; the Retry-After hint rides in the
// result struct so the header and the embedded hint always agree.
func refused(hash, msg string, retryAfter int) *runResult {
	return &runResult{
		code:       http.StatusTooManyRequests,
		retryAfter: retryAfter,
		resp:       runResponse{ConfigHash: hash, Error: fmt.Sprintf("%s (retry-after: %ds)", msg, retryAfter)},
	}
}

// execute runs the pipeline and renders the requested experiments.
// The run context descends from the server's base context — not any
// request's — with the effective deadline: the smaller of the
// request's own timeout and the server's -request-timeout ceiling.
func (s *server) execute(cfg runconfig.Config, hash string) *runResult {
	start := time.Now()
	ctx := s.baseCtx
	if d := effectiveTimeout(time.Duration(cfg.Timeout), s.cfg.requestTimeout); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	// Per-request collector: concurrent runs never interleave span
	// trees, and the numeric metrics fold into the server aggregate.
	reqCol := obs.NewCollector()
	defer s.col.Fold(reqCol)
	ctx = obs.Into(ctx, reqCol)
	// The shared governor rides the context; the scenario's own Govern
	// config stays zero (requests cannot set watermarks), so the
	// pipeline adopts this one instead of building its own.
	ctx = govern.Into(ctx, s.gov)

	scen := cfg.Scenario()
	dir, withStore := s.storePath(scen)
	if withStore {
		scen.CheckpointDir = dir
		scen.Resume = true
		// The quarantine ledger (host-controlled, never request-set)
		// lands next to the run's other artifacts.
		if len(scen.RIBIn) > 0 {
			scen.IngestQuarantineFile = filepath.Join(dir, "quarantine.jsonl")
		}
		// Hold the store for the run's whole lifetime, then rebound the
		// cache — a finished run is the only event that grows it.
		s.retainStore(dir)
		defer func() {
			s.releaseStore(dir)
			s.sweepCache()
		}()
	}

	art, err := core.RunContext(ctx, scen)
	report := &resilience.RunReport{}
	if art != nil && art.Report != nil {
		report = art.Report
	}
	if err != nil {
		return s.failure(ctx, hash, err, report, start)
	}

	var buf bytes.Buffer
	opts := cfg.RenderOptions()
	var renderRep *resilience.RunReport
	var renderErr error
	if len(cfg.Only) == 0 {
		renderRep, renderErr = art.RenderAllContext(ctx, &buf, opts)
	} else {
		renderRep, renderErr = art.RenderOnlyContext(ctx, &buf, cfg.Only, opts)
	}
	if renderRep != nil {
		report.Merge(renderRep)
	}
	if renderErr != nil {
		return s.failure(ctx, hash, renderErr, report, start)
	}

	resp := runResponse{
		ConfigHash: hash,
		Shed:       shedIn(report),
		ElapsedMS:  float64(time.Since(start)) / float64(time.Millisecond),
		Output:     buf.String(),
	}
	for _, st := range report.Failed() {
		resp.FailedStages = append(resp.FailedStages, st.Stage)
	}
	if art != nil {
		resp.Degraded = append(resp.Degraded, art.Degraded...)
		if art.Ingest != nil {
			resp.Ingest = summarizeIngest(art.Ingest, scen.IngestMaxBadFrac)
		}
	}
	s.col.Add("server.completed", 1)
	s.col.Observe("server.run_ms", int64(time.Since(start)/time.Millisecond))
	// Cache only clean outputs: a partially-failed render served from
	// cache would replay a transient failure forever.
	if withStore && len(resp.FailedStages) == 0 && len(resp.Degraded) == 0 {
		s.cachePut(hash, scen, buf.Bytes())
	}
	return &runResult{code: http.StatusOK, resp: resp}
}

// failure classifies a failed run: 504 with the partial report on
// deadline, 503 when the drain deadline abandoned the run, 500
// otherwise.
func (s *server) failure(ctx context.Context, hash string, err error, report *resilience.RunReport, start time.Time) *runResult {
	resp := runResponse{
		ConfigHash: hash,
		Error:      err.Error(),
		ElapsedMS:  float64(time.Since(start)) / float64(time.Millisecond),
		Report:     report,
	}
	switch {
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		s.col.Add("server.timeouts", 1)
		resp.Error = "deadline exceeded: " + resp.Error
		return &runResult{code: http.StatusGatewayTimeout, resp: resp}
	case s.baseCtx.Err() != nil:
		return &runResult{code: http.StatusServiceUnavailable, resp: resp}
	}
	s.col.Add("server.failures", 1)
	return &runResult{code: http.StatusInternalServerError, resp: resp}
}

// effectiveTimeout returns the smaller nonzero of the two.
func effectiveTimeout(request, ceiling time.Duration) time.Duration {
	switch {
	case request <= 0:
		return ceiling
	case ceiling <= 0:
		return request
	case request < ceiling:
		return request
	}
	return ceiling
}

// storePath places a scenario's checkpoint store under the data dir,
// keyed by the pipeline's own checkpoint identity — so requests that
// differ only in what they render (only/min-links) share one store of
// stage artifacts, while different worlds never collide.
func (s *server) storePath(scen core.Scenario) (string, bool) {
	if s.cfg.dataDir == "" {
		return "", false
	}
	return filepath.Join(s.cfg.dataDir, "store", core.CheckpointKey(scen).Hash()[:16]), true
}

// outputArtifact names the rendered-output artifact for a config hash
// inside the scenario's store.
func outputArtifact(hash string) string { return "output." + hash[:16] }

// cacheGet serves a previously rendered output byte-identically. It
// opens the store shared (read-only), so any number of concurrent
// cache reads coexist; a store currently owned by a writing pipeline
// simply misses.
func (s *server) cacheGet(ctx context.Context, cfg runconfig.Config, hash string) (string, bool) {
	scen := cfg.Scenario()
	dir, ok := s.storePath(scen)
	if !ok {
		return "", false
	}
	// Retain across the read so a concurrent sweep never evicts the
	// store out from under it.
	s.retainStore(dir)
	defer s.releaseStore(dir)
	st, err := checkpoint.OpenShared(ctx, dir, core.CheckpointKey(scen))
	if err != nil {
		return "", false
	}
	defer st.Close()
	var out bytes.Buffer
	err = st.Get(ctx, outputArtifact(hash), func(payload io.Reader, _ map[string]string) error {
		_, cerr := io.Copy(&out, payload)
		return cerr
	})
	if err != nil {
		return "", false
	}
	// A hit is a use: bump the directory mtime so the LRU sweep sees
	// this store as fresh.
	now := time.Now()
	os.Chtimes(dir, now, now)
	return out.String(), true
}

// cachePut persists a rendered output into the scenario's store,
// best-effort: the pipeline has closed its own exclusive handle by
// now, but another request's pipeline may hold the store — then the
// result simply is not cached this time.
func (s *server) cachePut(hash string, scen core.Scenario, output []byte) {
	ctx, cancel := context.WithTimeout(s.baseCtx, 30*time.Second)
	defer cancel()
	st, err := checkpoint.Open(ctx, scen.CheckpointDir, core.CheckpointKey(scen))
	if err != nil {
		s.col.Add("server.cache_put_skipped", 1)
		return
	}
	defer st.Close()
	err = st.Put(ctx, outputArtifact(hash), map[string]string{"config": hash},
		func(w io.Writer) error {
			_, werr := w.Write(output)
			return werr
		})
	if err != nil {
		s.col.Add("server.cache_put_skipped", 1)
		return
	}
	s.col.Add("server.cache_puts", 1)
}

// shedIn reports whether the run crossed the hard memory watermark.
func shedIn(report *resilience.RunReport) bool {
	for _, st := range report.Stages {
		if st.Status == resilience.StatusShed {
			return true
		}
	}
	return false
}

func (s *server) writeResult(w http.ResponseWriter, res *runResult) {
	if res.code == http.StatusTooManyRequests || res.code == http.StatusServiceUnavailable {
		secs := res.retryAfter
		if secs <= 0 {
			secs = s.retryAfterSecs()
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.code)
	json.NewEncoder(w).Encode(res.resp)
}

func (s *server) writeError(w http.ResponseWriter, code int, msg string) {
	s.writeResult(w, &runResult{code: code, resp: runResponse{Error: msg}})
}
