package main

import (
	"fmt"
	"net/http"
	"testing"
	"time"
)

// fakeClock drives a rateLimiter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestLimiter(rps float64, burst int) (*rateLimiter, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	rl := newRateLimiter(rps, burst)
	rl.now = clk.now
	return rl, clk
}

func TestRateLimiterBurstThenRefuse(t *testing.T) {
	rl, _ := newTestLimiter(1, 3)
	for i := 0; i < 3; i++ {
		if ok, _ := rl.allow("a"); !ok {
			t.Fatalf("request %d within burst refused", i)
		}
	}
	ok, retry := rl.allow("a")
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if retry < 1 {
		t.Fatalf("retry hint %d, want >= 1", retry)
	}
}

func TestRateLimiterRefills(t *testing.T) {
	rl, clk := newTestLimiter(2, 1) // 2 tokens/sec, capacity 1
	if ok, _ := rl.allow("a"); !ok {
		t.Fatal("first request refused")
	}
	if ok, _ := rl.allow("a"); ok {
		t.Fatal("empty bucket admitted")
	}
	clk.advance(500 * time.Millisecond) // refills exactly one token
	if ok, _ := rl.allow("a"); !ok {
		t.Fatal("request after refill refused")
	}
	// Refill never exceeds capacity: a long idle stretch buys one
	// token, not an unbounded backlog.
	clk.advance(time.Hour)
	if ok, _ := rl.allow("a"); !ok {
		t.Fatal("request after idle refused")
	}
	if ok, _ := rl.allow("a"); ok {
		t.Fatal("idle time accumulated beyond burst capacity")
	}
}

func TestRateLimiterKeysAreIndependent(t *testing.T) {
	rl, _ := newTestLimiter(1, 1)
	if ok, _ := rl.allow("a"); !ok {
		t.Fatal("first client refused")
	}
	if ok, _ := rl.allow("a"); ok {
		t.Fatal("exhausted client admitted")
	}
	if ok, _ := rl.allow("b"); !ok {
		t.Fatal("fresh client penalized for another's spend")
	}
}

func TestRateLimiterRetryAfterScalesWithRate(t *testing.T) {
	rl, _ := newTestLimiter(0.1, 1) // one token every 10s
	rl.allow("a")
	_, retry := rl.allow("a")
	if retry != 10 {
		t.Fatalf("retry hint %d, want 10", retry)
	}
	slow, _ := newTestLimiter(0.001, 1) // one token every 1000s: capped
	slow.allow("a")
	_, retry = slow.allow("a")
	if retry != 60 {
		t.Fatalf("retry hint %d, want capped at 60", retry)
	}
}

func TestRateLimiterEviction(t *testing.T) {
	rl, clk := newTestLimiter(1, 1)
	// Fill the table; key 0 is stalest after the loop advances time.
	for i := 0; i < maxRateBuckets; i++ {
		rl.allow(fmt.Sprintf("k%d", i))
		clk.advance(time.Millisecond)
	}
	if got := rl.size(); got != maxRateBuckets {
		t.Fatalf("bucket count %d, want %d", got, maxRateBuckets)
	}
	rl.allow("newcomer")
	if got := rl.size(); got != maxRateBuckets {
		t.Fatalf("bucket count after eviction %d, want %d", got, maxRateBuckets)
	}
	rl.mu.Lock()
	_, stalest := rl.buckets["k0"]
	_, fresh := rl.buckets["newcomer"]
	rl.mu.Unlock()
	if stalest {
		t.Fatal("stalest bucket survived eviction")
	}
	if !fresh {
		t.Fatal("newcomer bucket missing after eviction")
	}
}

// TestClientRateLimit429 exercises the full handler path: a client
// that spends its burst gets 429 with a Retry-After header before the
// request body is even parsed, a different client is untouched, and
// the refusals are counted.
func TestClientRateLimit429(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{maxRuns: 2, clientRPS: 1, clientBurst: 2})
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	s.rl.now = clk.now

	post := func(client string) *http.Response {
		t.Helper()
		// A deliberately bad body: the limiter must act before parsing,
		// so these cost a token but never run the pipeline.
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/run", nil)
		req.Header.Set("X-Client-Id", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST /run: %v", err)
		}
		resp.Body.Close()
		return resp
	}

	for i := 0; i < 2; i++ {
		if resp := post("hog"); resp.StatusCode == http.StatusTooManyRequests {
			t.Fatalf("request %d within burst got 429", i)
		}
	}
	resp := post("hog")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request beyond burst: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	if resp := post("polite"); resp.StatusCode == http.StatusTooManyRequests {
		t.Error("fresh client rate-limited by another's spend")
	}
	clk.advance(time.Second) // one token refills for the hog
	if resp := post("hog"); resp.StatusCode == http.StatusTooManyRequests {
		t.Error("request after refill still 429")
	}

	doc := s.col.Export()
	if got := doc.Counters["server.rate_limited"]; got != 1 {
		t.Errorf("server.rate_limited = %d, want 1", got)
	}
}

func TestClientKey(t *testing.T) {
	req := func(remote, id string) *http.Request {
		r, _ := http.NewRequest(http.MethodPost, "/run", nil)
		r.RemoteAddr = remote
		if id != "" {
			r.Header.Set("X-Client-Id", id)
		}
		return r
	}
	cases := []struct {
		r    *http.Request
		want string
	}{
		{req("10.0.0.1:51234", ""), "addr:10.0.0.1"},
		{req("10.0.0.1:51235", ""), "addr:10.0.0.1"}, // port stripped: one host, one bucket
		{req("[::1]:8080", ""), "addr:::1"},
		{req("nonsense", ""), "addr:nonsense"},
		{req("10.0.0.1:51234", "fleet-7"), "id:fleet-7"}, // header wins over address
	}
	for _, c := range cases {
		if got := clientKey(c.r); got != c.want {
			t.Errorf("clientKey(%q, id=%q) = %q, want %q",
				c.r.RemoteAddr, c.r.Header.Get("X-Client-Id"), got, c.want)
		}
	}
}
