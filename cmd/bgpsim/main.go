// Command bgpsim generates a synthetic Internet, propagates routes
// from every origin to the route-collector vantage points, and dumps
// the resulting collector RIB as text (one AS path per line) and/or in
// the MRT-style binary framing.
//
// Usage: bgpsim [-seed N] [-ases N] [-text paths.txt] [-rib rib.mrt]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"breval/internal/asgraph"
	"breval/internal/bgp"
	"breval/internal/topogen"
	"breval/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bgpsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bgpsim", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "world seed")
	ases := fs.Int("ases", 8000, "number of ASes")
	textOut := fs.String("text", "", "write paths as text (one per line); - for stdout")
	ribOut := fs.String("rib", "", "write an MRT-style binary RIB dump")
	ts := fs.Uint("ts", 1522540800, "RIB snapshot timestamp") // 2018-04-01
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *textOut == "" && *ribOut == "" {
		return fmt.Errorf("nothing to do: pass -text and/or -rib")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := topogen.DefaultConfig(*seed)
	if *ases != cfg.NumASes {
		cfg = cfg.Scaled(*ases)
	}
	w, err := topogen.GenerateContext(ctx, cfg)
	if err != nil {
		return err
	}
	sim := bgp.NewSimulator(w.Graph)
	ps, err := sim.PropagateContext(ctx, w.ASNs, w.VPs)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bgpsim: %d paths from %d vantage points\n", ps.Len(), len(w.VPs))

	if *textOut != "" {
		out := os.Stdout
		if *textOut != "-" {
			f, err := os.Create(*textOut)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		bw := bufio.NewWriter(out)
		var werr error
		ps.ForEach(func(p asgraph.Path) {
			if werr == nil {
				_, werr = fmt.Fprintln(bw, p)
			}
		})
		if werr != nil {
			return werr
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	if *ribOut != "" {
		f, err := os.Create(*ribOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := wire.WriteRIB(f, ps, uint32(*ts)); err != nil {
			return err
		}
	}
	return nil
}
