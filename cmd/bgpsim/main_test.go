package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"breval/internal/wire"
)

func TestRunWritesTextAndRIB(t *testing.T) {
	dir := t.TempDir()
	text := filepath.Join(dir, "paths.txt")
	rib := filepath.Join(dir, "rib.mrt")
	if err := run([]string{"-seed", "2", "-ases", "400", "-text", text, "-rib", rib}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(text)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 100 {
		t.Fatalf("only %d paths", len(lines))
	}
	f, err := os.Open(rib)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ps, err := wire.ReadRIB(f)
	if err != nil {
		t.Fatalf("ReadRIB: %v", err)
	}
	if ps.Len() != len(lines) {
		t.Errorf("RIB has %d paths, text has %d", ps.Len(), len(lines))
	}
}

func TestRunRequiresOutput(t *testing.T) {
	if err := run([]string{"-ases", "400"}); err == nil {
		t.Error("no outputs requested but run succeeded")
	}
}
