package main

import (
	"os"
	"path/filepath"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/registry"
)

func TestRunWritesAllArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-seed", "2", "-ases", "400", "-out", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{
		"as-rel.txt", "as-numbers.csv", "as-org.txt",
		"delegated-ripencc-extended", "delegated-lacnic-extended",
		"clique.txt", "hypergiants.txt", "vps.txt", "publishers.txt",
	} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	// The as-rel file parses back into a graph.
	f, err := os.Open(filepath.Join(dir, "as-rel.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := asgraph.ParseSerial1(f)
	if err != nil {
		t.Fatalf("ParseSerial1: %v", err)
	}
	if g.NumLinks() == 0 {
		t.Error("empty graph")
	}
	// The delegation files parse back.
	df, err := os.Open(filepath.Join(dir, "delegated-ripencc-extended"))
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	if _, err := registry.ParseDelegated(df); err != nil {
		t.Fatalf("ParseDelegated: %v", err)
	}
}

func TestRunRequiresOut(t *testing.T) {
	if err := run([]string{"-ases", "400"}); err == nil {
		t.Error("missing -out accepted")
	}
}
