// Command topogen generates a synthetic Internet and writes its
// artefacts to a directory, in the same formats the real-world data
// sources use:
//
//	as-rel.txt                CAIDA serial-1 relationships (ground truth)
//	as-numbers.csv            IANA ASN block registry
//	delegated-<rir>-extended  per-RIR delegation files
//	as-org.txt                CAIDA-style AS-to-Organization table
//	clique.txt, hypergiants.txt, vps.txt, publishers.txt
//
// Usage: topogen [-seed N] [-ases N] -out DIR
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"breval/internal/asn"
	"breval/internal/registry"
	"breval/internal/topogen"

	"breval/internal/asgraph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "world seed")
	ases := fs.Int("ases", 8000, "number of ASes")
	out := fs.String("out", "", "output directory (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := topogen.DefaultConfig(*seed)
	if *ases != cfg.NumASes {
		cfg = cfg.Scaled(*ases)
	}
	w, err := topogen.GenerateContext(ctx, cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	if err := writeFile(*out, "as-rel.txt", func(f *os.File) error {
		return asgraph.WriteSerial1(f, w.Graph)
	}); err != nil {
		return err
	}
	if err := writeFile(*out, "as-numbers.csv", func(f *os.File) error {
		_, err := w.IANA.WriteTo(f)
		return err
	}); err != nil {
		return err
	}
	for _, d := range w.Delegations {
		name := fmt.Sprintf("delegated-%s-extended", d.Registry)
		d := d
		if err := writeFile(*out, name, func(f *os.File) error {
			return registry.WriteDelegated(f, d)
		}); err != nil {
			return err
		}
	}
	if err := writeFile(*out, "as-org.txt", func(f *os.File) error {
		_, err := w.Orgs.WriteTo(f)
		return err
	}); err != nil {
		return err
	}
	lists := map[string][]asn.ASN{
		"clique.txt":      w.Clique,
		"hypergiants.txt": w.Hypergiants,
		"vps.txt":         w.VPs,
	}
	var pubs []asn.ASN
	for _, a := range w.ASNs {
		if w.Publishers[a] {
			pubs = append(pubs, a)
		}
	}
	lists["publishers.txt"] = pubs
	for name, asns := range lists {
		asns := asns
		if err := writeFile(*out, name, func(f *os.File) error {
			for _, a := range asns {
				if _, err := fmt.Fprintln(f, a); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	fmt.Printf("topogen: wrote %d ASes, %d links to %s\n", len(w.ASNs), w.Graph.NumLinks(), *out)
	return nil
}

func writeFile(dir, name string, fn func(*os.File) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", name, err)
	}
	return f.Close()
}
