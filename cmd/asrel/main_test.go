package main

import (
	"os"
	"path/filepath"
	"testing"

	"breval/internal/asgraph"
)

func writePaths(t *testing.T, dir string) string {
	t.Helper()
	name := filepath.Join(dir, "paths.txt")
	const content = `# vp ... origin
100 10 1 2 12 103
101 10 1 11 102
102 11 1 2 12 103
103 12 2 1 10 100
103 12 2 1 11 102
`
	if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return name
}

func TestRunAlgorithms(t *testing.T) {
	dir := t.TempDir()
	paths := writePaths(t, dir)
	for _, algo := range []string{"asrank", "problink", "toposcope", "gao"} {
		out := filepath.Join(dir, algo+".txt")
		if err := run([]string{"-paths", paths, "-algo", algo, "-out", out}); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		g, err := asgraph.ParseSerial1(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s output unparsable: %v", algo, err)
		}
		if g.NumLinks() == 0 {
			t.Errorf("%s produced no relationships", algo)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	paths := writePaths(t, dir)
	if err := run([]string{"-algo", "asrank"}); err == nil {
		t.Error("missing -paths accepted")
	}
	if err := run([]string{"-paths", paths, "-algo", "oracle"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("1 x 3\n"), 0o644)
	if err := run([]string{"-paths", bad, "-out", filepath.Join(dir, "o.txt")}); err == nil {
		t.Error("garbage input accepted")
	}
}
