// Command asrel runs one AS-relationship inference algorithm over a
// path file (text, one space-separated VP→origin AS path per line, or
// an MRT-style binary RIB from bgpsim -rib) and writes the inferred
// relationships in CAIDA serial-1 format.
//
// Usage: asrel -paths FILE [-mrt] [-algo asrank|problink|toposcope|gao] [-out FILE]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"breval/internal/asgraph"
	"breval/internal/bgp"
	"breval/internal/inference"
	"breval/internal/inference/asrank"
	"breval/internal/inference/features"
	"breval/internal/inference/gao"
	"breval/internal/inference/problink"
	"breval/internal/inference/toposcope"
	"breval/internal/resilience"
	"breval/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "asrel:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("asrel", flag.ContinueOnError)
	pathsFile := fs.String("paths", "", "input path file (required)")
	mrt := fs.Bool("mrt", false, "input is an MRT-style binary RIB dump")
	algoName := fs.String("algo", "asrank", "algorithm: asrank, problink, toposcope or gao")
	out := fs.String("out", "-", "output file; - for stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pathsFile == "" {
		return fmt.Errorf("-paths is required")
	}

	ps, err := readPaths(*pathsFile, *mrt)
	if err != nil {
		return err
	}
	var algo inference.Algorithm
	switch strings.ToLower(*algoName) {
	case "asrank":
		algo = asrank.New(asrank.Options{})
	case "problink":
		algo = problink.New(problink.Options{})
	case "toposcope":
		algo = toposcope.New(toposcope.Options{})
	case "gao":
		algo = gao.New(gao.Options{})
	default:
		return fmt.Errorf("unknown algorithm %q", *algoName)
	}

	fset := features.Compute(ps)
	fmt.Fprintf(os.Stderr, "asrel: %d paths, %d links, running %s\n",
		fset.PathCount, fset.NumLinks(), algo.Name())

	// Run the inference as an isolated stage: a panic on pathological
	// input surfaces as an error with the algorithm's name and stack
	// instead of a bare crash.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := resilience.Value(ctx, resilience.NewRunner(), "infer."+algo.Name(),
		resilience.Policy{}, func(ctx context.Context) (*inference.Result, error) {
			if err := resilience.Checkpoint(ctx, "infer."+algo.Name()); err != nil {
				return nil, err
			}
			return algo.Infer(fset), nil
		})
	if err != nil {
		return err
	}

	g := asgraph.New()
	for l, rel := range res.Rels {
		if err := g.SetRel(l.A, l.B, rel); err != nil {
			return err
		}
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return asgraph.WriteSerial1(w, g)
}

func readPaths(name string, mrt bool) (*bgp.PathSet, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if mrt {
		return wire.ReadRIB(f)
	}
	ps := bgp.NewPathSet(1024, 8192)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := asgraph.ParsePath(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, lineno, err)
		}
		ps.Append(p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ps, nil
}
