// Command breval runs the full validation-bias study end to end on a
// synthetic Internet and regenerates every table and figure of Prehn &
// Feldmann, "How biased is our Validation (Data) for AS
// Relationships?" (IMC 2021).
//
// Usage:
//
//	breval [-seed N] [-ases N] [-policy ignore|p2p-if-first|always-p2c]
//	       [-only fig1,...,clean,case,hard,sources,reclass,evolve,unari]
//	       [-algos ASRank,ProbLink,TopoScope,Gao] [-min-links N]
//	       [-timeout D] [-experiment-timeout D] [-stage-retries N]
//	       [-checkpoint-dir DIR] [-resume] [-checkpoint-verify]
//	       [-kill-after NAME]
//	       [-mem-soft-mb N] [-mem-hard-mb N] [-stall-timeout D]
//	       [-inject-pressure soft|hard]
//	       [-soak N] [-chaos-seed N]
//	       [-rib-in FILES] [-ingest-max-bad-frac F]
//	       [-ingest-quarantine FILE] [-rib-out FILE]
//	       [-report FILE] [-metrics-out FILE]
//	       [-cpuprofile FILE] [-memprofile FILE] [-version]
//
// Run configuration (seed, scale, policy, experiment and algorithm
// selection, timeouts, checkpointing, memory watermarks) is the shared
// runconfig surface: cmd/brevald resolves its JSON request bodies
// through the same package, so equivalent flag and JSON spellings
// produce identical checkpoint keys and identical output bytes.
//
// Without -only every experiment is rendered in paper order.
//
// -timeout bounds the whole run; -experiment-timeout bounds each
// pipeline stage and each experiment renderer individually (a stage
// that overruns is abandoned and reported, the rest of the run
// continues); -stage-retries re-attempts failed retryable stages.
// -report writes the machine-readable per-stage run report as JSON.
//
// -checkpoint-dir enables the durable artifact store (see
// docs/checkpointing.md): expensive stage outputs — the propagated
// path set, both validation snapshots, per-algorithm inference
// results — are written there with CRC32C trailers under a versioned
// manifest. With -resume a later run under the same configuration
// reuses verified artifacts and regenerates anything corrupt
// (quarantining the bad file) or missing. -checkpoint-verify runs a
// read-only integrity check (fsck) over the store and exits: 0 when
// clean, 1 when corrupt or missing artifacts were found.
//
// -kill-after NAME is a crash-testing hook: the process exits with
// code 7 immediately after artifact NAME (world, paths,
// validation.raw, validation.clean, rel.<algo>) is durably
// checkpointed, leaving a store a subsequent -resume run must recover
// from byte-identically.
//
// -mem-soft-mb and -mem-hard-mb enable the resource governor (see
// docs/resilience.md): heap use crossing the soft watermark shrinks
// the shared worker-permit pool (adaptive backpressure), crossing the
// hard watermark sheds load — the run completes in single-worker mode
// and exits 8 instead of dying on OOM. -stall-timeout arms the
// heartbeat watchdog: supervised workers silent past the deadline are
// cancelled and their stage retried. -inject-pressure is a testing
// hook that inflates every governor memory sample past the named
// watermark, forcing the corresponding reaction deterministically.
//
// -soak N runs the deterministic chaos harness instead of a normal
// run: a fault-free baseline, then N seeded fault storms (crashes at
// checkpoint boundaries, stage panics, transient errors, injected
// memory pressure), each driven through a restart-with-resume loop
// until it completes, asserting the recovered artifacts are
// byte-identical to the baseline. -chaos-seed selects the storm
// sequence; the same seed reproduces the same storms exactly.
//
// -rib-in replaces simulated route propagation with real-data
// ingestion (see docs/ingestion.md): the comma-separated MRT RIB
// dumps (plain or gzip) are streamed through the hardened ingest
// front-end in bounded memory and fused directly into dense feature
// extraction. Malformed records are quarantined — written with a
// typed error taxonomy to the -ingest-quarantine ledger — instead of
// aborting the run; when their fraction exceeds
// -ingest-max-bad-frac (default 0: any bad record is over budget)
// the run degrades to partial and exits 3, never 0. Runs are keyed
// by the dumps' content digest, so -resume detects a swapped input
// file and -checkpoint runs on renamed-but-identical files still
// hit. -rib-out writes the run's final path set (simulated or
// ingested) back out in the same MRT framing, closing the loop for
// round-trip tooling and corruption smoke tests.
//
// -metrics-out enables the observability layer (see
// docs/observability.md) and writes the run's metrics document —
// hierarchical stage spans, counters (propagation worker totals,
// skipped origins/VPs, inference phase counts), histograms and
// memstats snapshots — as JSON, with the per-stage run report merged
// in. -cpuprofile and -memprofile write pprof CPU and heap profiles.
// All three are off by default and add no overhead when unset.
//
// Exit codes: 0 when everything succeeded, 1 on fatal errors (bad
// flags, a fatal pipeline stage, cancellation, an unclean
// -checkpoint-verify), 3 on partial success — some stages failed or
// degraded but every surviving experiment was rendered — 7 when a
// -kill-after crash point fired, and 8 when the governor shed load at
// the hard memory watermark (the run completed, results are valid,
// but the process ran degraded). The codes never alias: shed beats
// partial when both apply, and a fatal error beats both.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"breval/internal/bgp"
	"breval/internal/buildinfo"
	"breval/internal/checkpoint"
	"breval/internal/core"
	"breval/internal/govern"
	"breval/internal/govern/chaos"
	"breval/internal/hardlinks"
	"breval/internal/obs"
	"breval/internal/resilience"
	"breval/internal/runconfig"
	"breval/internal/wire"
)

// errPartial marks a run in which some stages failed but the
// surviving experiments were rendered; main maps it to exitPartial.
var errPartial = errors.New("partial success: some stages failed, surviving experiments rendered")

// errShed marks a run that completed under hard-watermark load-shed;
// main maps it to exitShed. It takes precedence over errPartial: a
// shed run may also be partial, but the operator signal that matters
// is "this host was too small", not "a stage degraded".
var errShed = errors.New("load shed: hard memory watermark crossed, run completed in single-worker mode")

// exitPartial and exitShed are the documented non-fatal exit codes
// (see docs/resilience.md). resilience.CrashExitCode (7) is the
// injected-crash code; the four never alias.
const (
	exitPartial = 3
	exitShed    = 8
)

func main() {
	err := run(os.Args[1:])
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "breval:", err)
	os.Exit(exitCode(err))
}

// exitCode maps run's error to the documented exit-code table. Shed
// beats partial: a run can be both, and "this host was too small" is
// the actionable signal. (Exit 7 never reaches here — an injected
// crash exits inside resilience.CrashExit.)
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, errShed):
		return exitShed
	case errors.Is(err, errPartial):
		return exitPartial
	}
	return 1
}

func run(args []string) error {
	fs := flag.NewFlagSet("breval", flag.ContinueOnError)
	// Everything a run's identity or execution depends on lives in the
	// shared runconfig surface — the same one cmd/brevald resolves JSON
	// requests through — so equivalent flag and JSON spellings hash to
	// the same checkpoint key. Only breval-specific modes and output
	// destinations are declared here.
	cfg := runconfig.Default()
	cfg.RegisterFlags(fs)
	appcOut := fs.String("appendix-c", "", "write the Appendix-C per-link feature vectors (validated links) to this TSV file")
	ribOut := fs.String("rib-out", "", "write the run's propagated (or ingested) path set as an MRT RIB dump to this file")
	ckptVerify := fs.Bool("checkpoint-verify", false, "fsck the -checkpoint-dir store and exit (nonzero when corrupt or missing)")
	killAfter := fs.String("kill-after", "", "crash testing: exit 7 right after artifact NAME is durably checkpointed")
	injectPressure := fs.String("inject-pressure", "", "pressure testing: inflate every governor memory sample past the soft or hard watermark")
	soakRuns := fs.Int("soak", 0, "run the chaos/soak harness for N seeded fault storms instead of a normal run")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for the -soak fault-storm sequence")
	reportOut := fs.String("report", "", "write the per-stage run report as JSON to this file")
	metricsOut := fs.String("metrics-out", "", "enable observability and write the metrics document (spans, counters, memstats) as JSON to this file")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile at the end of the run to this file")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(buildinfo.Get())
		return nil
	}
	cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return err
	}
	// Real-data runs are keyed by what the dump files contain, not
	// where they live: resolve the content digest up front so the
	// checkpoint key (and any later resume) pins it.
	if err := cfg.ResolveRIB(); err != nil {
		return err
	}

	if *ckptVerify {
		if cfg.CheckpointDir == "" {
			return fmt.Errorf("-checkpoint-verify requires -checkpoint-dir")
		}
		res, err := checkpoint.Fsck(cfg.CheckpointDir)
		if err != nil {
			return err
		}
		if err := res.WriteText(os.Stdout); err != nil {
			return err
		}
		if !res.Clean() {
			return fmt.Errorf("checkpoint store %s is not clean", cfg.CheckpointDir)
		}
		return nil
	}
	if *killAfter != "" {
		if cfg.CheckpointDir == "" {
			return fmt.Errorf("-kill-after requires -checkpoint-dir (a crash without a store saves nothing to resume from)")
		}
		resilience.InjectAt("checkpoint.saved."+*killAfter, resilience.Fault{Kind: resilience.KindCrash})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(cfg.Timeout))
		defer cancel()
	}

	if *cpuProfile != "" {
		stopProf, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stopProf(); err != nil {
				fmt.Fprintln(os.Stderr, "breval:", err)
			}
		}()
	}

	// The collector rides the context: every resilience stage becomes
	// a span and the instrumented packages (bgp, inference, render)
	// find it via obs.From. Without -metrics-out col stays nil and all
	// instrumentation is a no-op.
	var col *obs.Collector
	if *metricsOut != "" {
		col = obs.NewCollector()
		ctx = obs.Into(ctx, col)
		col.SnapshotMemStats("start")
	}

	s := cfg.Scenario()
	switch *injectPressure {
	case "":
	case "soft":
		if s.Govern.SoftBytes <= 0 {
			return fmt.Errorf("-inject-pressure soft requires -mem-soft-mb")
		}
		armPressure(s.Govern.SoftBytes)
	case "hard":
		if s.Govern.HardBytes <= 0 {
			return fmt.Errorf("-inject-pressure hard requires -mem-hard-mb")
		}
		armPressure(s.Govern.HardBytes)
	default:
		return fmt.Errorf("-inject-pressure must be soft or hard (got %q)", *injectPressure)
	}
	names := cfg.Only

	if *soakRuns > 0 {
		return runSoak(ctx, s, *chaosSeed, *soakRuns, cfg.CheckpointDir, *reportOut)
	}

	fmt.Fprintf(os.Stderr, "breval: generating world (%d ASes, seed %d) and running the pipeline...\n",
		s.NumASes, s.Seed)
	art, err := core.RunContext(ctx, s)
	report := &resilience.RunReport{}
	if art != nil && art.Report != nil {
		report = art.Report
	}
	if err != nil {
		// A fatal pipeline stage: nothing can render. Still emit the
		// metrics and the report so the failed stage is
		// machine-readable.
		return errors.Join(err,
			finishObs(col, report, *metricsOut, *memProfile),
			finishReport(report, *reportOut))
	}

	if *ribOut != "" {
		if err := writeRIBDump(*ribOut, art.Paths); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "breval: wrote %d paths as an MRT RIB dump to %s\n",
			art.Paths.Len(), *ribOut)
	}

	if *appcOut != "" {
		f, err := os.Create(*appcOut)
		if err != nil {
			return err
		}
		if err := hardlinks.WriteFeaturesTSV(f, art.AppendixC(nil)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "breval: wrote Appendix-C features to %s\n", *appcOut)
	}

	// The EvolveMonths=6 rule for named selections lives inside
	// RenderOptions so the server renders the same bytes for the same
	// config.
	opts := cfg.RenderOptions()
	var renderRep *resilience.RunReport
	var renderErr error
	if len(names) == 0 {
		renderRep, renderErr = art.RenderAllContext(ctx, os.Stdout, opts)
	} else {
		renderRep, renderErr = art.RenderOnlyContext(ctx, os.Stdout, names, opts)
	}
	if renderRep != nil {
		report.Merge(renderRep)
	}
	werr := errors.Join(
		finishObs(col, report, *metricsOut, *memProfile),
		finishReport(report, *reportOut))
	if renderErr != nil {
		return errors.Join(renderErr, werr)
	}
	if werr != nil {
		return werr
	}
	if shedIn(report) {
		return errShed
	}
	if len(report.Failed()) > 0 || len(art.Degraded) > 0 {
		return errPartial
	}
	return nil
}

// writeRIBDump exports the run's path set in the MRT framing
// internal/ingest reads back: round-trip tooling for -rib-in and the
// CHECK_INGEST smoke's dump generator.
func writeRIBDump(path string, ps *bgp.PathSet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := wire.WriteRIB(f, ps, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// shedIn reports whether the run crossed the hard memory watermark
// (the governor recorded a StatusShed ledger entry).
func shedIn(report *resilience.RunReport) bool {
	for _, st := range report.Stages {
		if st.Status == resilience.StatusShed {
			return true
		}
	}
	return false
}

// armPressure installs the -inject-pressure testing fault: every
// governor memory sample is inflated by delta bytes, so the sampled
// heap crosses the corresponding watermark no matter how small the
// real heap is.
func armPressure(delta int64) {
	resilience.InjectAt(govern.PressureSite, resilience.Fault{
		Kind:    resilience.KindCorrupt,
		Corrupt: func(v any) any { return v.(int64) + delta },
	})
}

// runSoak is the -soak mode: hand the scenario to the chaos harness
// and render its verdict. The per-storm checkpoint stores live under
// dir when -checkpoint-dir was given, else under a temp directory
// removed afterwards. With -report the full soak report is written
// there as JSON.
func runSoak(ctx context.Context, s core.Scenario, seed int64, runs int, dir, reportOut string) error {
	if dir == "" {
		td, err := os.MkdirTemp("", "breval-soak-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(td)
		dir = td
	}
	// The harness manages stores and resume itself, one per storm.
	s.CheckpointDir = ""
	s.Resume = false
	fmt.Fprintf(os.Stderr, "breval: chaos soak: %d storm(s), seed %d, %d ASes\n", runs, seed, s.NumASes)
	rep, err := chaos.Soak(ctx, chaos.Config{
		Seed:     seed,
		Runs:     runs,
		Scenario: s,
		Dir:      dir,
		Log:      os.Stderr,
	})
	if rep != nil && reportOut != "" {
		if werr := writeSoakReport(rep, reportOut); werr != nil {
			err = errors.Join(err, werr)
		}
	}
	if err != nil {
		return err
	}
	for _, rr := range rep.Runs {
		fmt.Printf("storm %d: attempts=%d crashes=%d shed=%v match=%v\n",
			rr.Run, rr.Attempts, rr.Crashes, rr.Shed, rr.Match)
	}
	fmt.Printf("soak ok: %d/%d storms recovered byte-identical artifacts (baseline %s)\n",
		len(rep.Runs), runs, rep.BaselineDigest[:16])
	return nil
}

func writeSoakReport(rep *chaos.Report, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write soak report: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return fmt.Errorf("write soak report: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("write soak report: %w", err)
	}
	return nil
}

// finishObs finalises the observability outputs: it takes the closing
// memstats snapshot, cross-embeds the metrics document and the run
// report (each side carries a copy without the back-reference so
// neither JSON encoding recurses), writes the document to metricsPath,
// and writes the heap profile when heapPath is set. A nil col (no
// -metrics-out) only writes the heap profile. Like finishReport, a
// failed write is an error: the caller asked for the file.
func finishObs(col *obs.Collector, report *resilience.RunReport, metricsPath, heapPath string) error {
	var errs []error
	if col != nil {
		col.SnapshotMemStats("end")
		doc := col.Export()
		doc.Report = &resilience.RunReport{Stages: report.Stages}
		inner := *doc
		inner.Report = nil
		report.Metrics = &inner
		if err := writeMetrics(doc, metricsPath); err != nil {
			errs = append(errs, err)
		}
	}
	if heapPath != "" {
		if err := obs.WriteHeapProfile(heapPath); err != nil {
			errs = append(errs, fmt.Errorf("write heap profile: %w", err))
		}
	}
	return errors.Join(errs...)
}

func writeMetrics(doc *obs.Document, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write metrics: %w", err)
	}
	if err := doc.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("write metrics: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("write metrics: %w", err)
	}
	return nil
}

// finishReport prints non-OK stages to stderr and writes the full
// JSON report when a path was given. A failed write is an error: the
// caller asked for a machine-readable record and did not get one.
func finishReport(report *resilience.RunReport, path string) error {
	if d := report.Degraded(); len(d) > 0 {
		fmt.Fprintln(os.Stderr, "breval: stage report (non-OK stages):")
		(&resilience.RunReport{Stages: d}).WriteText(os.Stderr)
	}
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write report: %w", err)
	}
	if err := report.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("write report: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("write report: %w", err)
	}
	return nil
}
