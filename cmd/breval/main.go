// Command breval runs the full validation-bias study end to end on a
// synthetic Internet and regenerates every table and figure of Prehn &
// Feldmann, "How biased is our Validation (Data) for AS
// Relationships?" (IMC 2021).
//
// Usage:
//
//	breval [-seed N] [-ases N] [-policy ignore|p2p-if-first|always-p2c]
//	       [-only fig1,...,clean,case,hard,sources,reclass,evolve,unari]
//	       [-algos ASRank,ProbLink,TopoScope,Gao] [-min-links N]
//
// Without -only every experiment is rendered in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"breval/internal/core"
	"breval/internal/hardlinks"
	"breval/internal/sampling"
	"breval/internal/validation"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "breval:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("breval", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "world seed")
	ases := fs.Int("ases", 8000, "number of ASes")
	policy := fs.String("policy", "ignore", "ambiguous-label policy: ignore, p2p-if-first or always-p2c")
	only := fs.String("only", "", "comma-separated experiments (fig1,fig2,fig3,tables,fig4-6,fig7-9,clean,case,hard,sources,reclass,evolve,unari,vps,complex); empty = all")
	algos := fs.String("algos", "", "comma-separated algorithms; empty = all four")
	minLinks := fs.Int("min-links", 100, "minimum validated links for a table row")
	appcOut := fs.String("appendix-c", "", "write the Appendix-C per-link feature vectors (validated links) to this TSV file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := core.DefaultScenario(*seed)
	s.NumASes = *ases
	switch *policy {
	case "ignore":
		s.Policy = validation.Ignore
	case "p2p-if-first":
		s.Policy = validation.P2PIfFirst
	case "always-p2c":
		s.Policy = validation.AlwaysP2C
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	if *algos != "" {
		s.Algorithms = strings.Split(*algos, ",")
	}

	fmt.Fprintf(os.Stderr, "breval: generating world (%d ASes, seed %d) and running the pipeline...\n",
		s.NumASes, s.Seed)
	art, err := core.Run(s)
	if err != nil {
		return err
	}

	if *appcOut != "" {
		f, err := os.Create(*appcOut)
		if err != nil {
			return err
		}
		if err := hardlinks.WriteFeaturesTSV(f, art.AppendixC(nil)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "breval: wrote Appendix-C features to %s\n", *appcOut)
	}

	if *only == "" {
		return art.RenderAll(os.Stdout, *minLinks)
	}
	for _, exp := range strings.Split(*only, ",") {
		if err := renderOne(art, strings.TrimSpace(exp), *minLinks); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func renderOne(art *core.Artifacts, exp string, minLinks int) error {
	w := os.Stdout
	switch exp {
	case "fig1":
		return art.RenderFigure1(w)
	case "fig2":
		return art.RenderFigure2(w)
	case "fig3":
		return core.RenderHeatmapPair(w, "Figure 3", art.Figure3())
	case "tables", "tab1", "tab2", "tab3":
		names := map[string][]string{
			"tab1":   {core.AlgoASRank},
			"tab2":   {core.AlgoProbLink},
			"tab3":   {core.AlgoTopoScope},
			"tables": {core.AlgoASRank, core.AlgoProbLink, core.AlgoTopoScope, core.AlgoGao},
		}[exp]
		for _, algo := range names {
			if _, ok := art.Results[algo]; !ok {
				continue
			}
			tab, err := art.TableFor(algo, minLinks)
			if err != nil {
				return err
			}
			if err := core.RenderTable(w, tab); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	case "fig4-6":
		ser, err := art.Figures4to6(core.AlgoASRank, "T1-TR", sampling.Config{})
		if err != nil {
			return err
		}
		return art.RenderSampling(w, core.AlgoASRank, "T1-TR", ser)
	case "fig7-9":
		for i, hp := range art.Figures7to9() {
			if err := core.RenderHeatmapPair(w, fmt.Sprintf("Figure %d", 7+i), hp); err != nil {
				return err
			}
		}
		return nil
	case "clean":
		return art.RenderCleanReport(w)
	case "case":
		return art.RenderCaseStudy(w, core.AlgoASRank)
	case "hard":
		return art.RenderHardLinks(w)
	case "sources":
		return art.RenderSourceComparison(w)
	case "reclass":
		return art.RenderReclassification(w, core.AlgoASRank)
	case "evolve":
		res, err := art.RunEvolution(6)
		if err != nil {
			return err
		}
		return art.RenderEvolution(w, res)
	case "unari":
		return art.RenderUncertainty(w)
	case "vps":
		return art.RenderVPSweep(w, art.VPSweep(nil))
	case "complex":
		return art.RenderComplexRelationships(w)
	}
	return fmt.Errorf("unknown experiment %q", exp)
}
