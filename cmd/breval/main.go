// Command breval runs the full validation-bias study end to end on a
// synthetic Internet and regenerates every table and figure of Prehn &
// Feldmann, "How biased is our Validation (Data) for AS
// Relationships?" (IMC 2021).
//
// Usage:
//
//	breval [-seed N] [-ases N] [-policy ignore|p2p-if-first|always-p2c]
//	       [-only fig1,...,clean,case,hard,sources,reclass,evolve,unari]
//	       [-algos ASRank,ProbLink,TopoScope,Gao] [-min-links N]
//	       [-timeout D] [-experiment-timeout D] [-stage-retries N]
//	       [-checkpoint-dir DIR] [-resume] [-checkpoint-verify]
//	       [-kill-after NAME]
//	       [-report FILE] [-metrics-out FILE]
//	       [-cpuprofile FILE] [-memprofile FILE]
//
// Without -only every experiment is rendered in paper order.
//
// -timeout bounds the whole run; -experiment-timeout bounds each
// pipeline stage and each experiment renderer individually (a stage
// that overruns is abandoned and reported, the rest of the run
// continues); -stage-retries re-attempts failed retryable stages.
// -report writes the machine-readable per-stage run report as JSON.
//
// -checkpoint-dir enables the durable artifact store (see
// docs/checkpointing.md): expensive stage outputs — the propagated
// path set, both validation snapshots, per-algorithm inference
// results — are written there with CRC32C trailers under a versioned
// manifest. With -resume a later run under the same configuration
// reuses verified artifacts and regenerates anything corrupt
// (quarantining the bad file) or missing. -checkpoint-verify runs a
// read-only integrity check (fsck) over the store and exits: 0 when
// clean, 1 when corrupt or missing artifacts were found.
//
// -kill-after NAME is a crash-testing hook: the process exits with
// code 7 immediately after artifact NAME (world, paths,
// validation.raw, validation.clean, rel.<algo>) is durably
// checkpointed, leaving a store a subsequent -resume run must recover
// from byte-identically.
//
// -metrics-out enables the observability layer (see
// docs/observability.md) and writes the run's metrics document —
// hierarchical stage spans, counters (propagation worker totals,
// skipped origins/VPs, inference phase counts), histograms and
// memstats snapshots — as JSON, with the per-stage run report merged
// in. -cpuprofile and -memprofile write pprof CPU and heap profiles.
// All three are off by default and add no overhead when unset.
//
// Exit codes: 0 when everything succeeded, 1 on fatal errors (bad
// flags, a fatal pipeline stage, cancellation, an unclean
// -checkpoint-verify), 3 on partial success — some stages failed or
// degraded but every surviving experiment was rendered — and 7 when a
// -kill-after crash point fired.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"breval/internal/checkpoint"
	"breval/internal/core"
	"breval/internal/hardlinks"
	"breval/internal/obs"
	"breval/internal/resilience"
	"breval/internal/validation"
)

// errPartial marks a run in which some stages failed but the
// surviving experiments were rendered; main maps it to exitPartial.
var errPartial = errors.New("partial success: some stages failed, surviving experiments rendered")

// exitPartial is the documented partial-success exit code (see
// docs/resilience.md).
const exitPartial = 3

func main() {
	err := run(os.Args[1:])
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "breval:", err)
	if errors.Is(err, errPartial) {
		os.Exit(exitPartial)
	}
	os.Exit(1)
}

func run(args []string) error {
	fs := flag.NewFlagSet("breval", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "world seed")
	ases := fs.Int("ases", 8000, "number of ASes")
	policy := fs.String("policy", "ignore", "ambiguous-label policy: ignore, p2p-if-first or always-p2c")
	only := fs.String("only", "", "comma-separated experiments (fig1,fig2,fig3,tables,fig4-6,fig7-9,clean,case,hard,sources,reclass,evolve,unari,vps,complex); empty = all")
	algos := fs.String("algos", "", "comma-separated algorithms; empty = all four")
	minLinks := fs.Int("min-links", 100, "minimum validated links for a table row")
	appcOut := fs.String("appendix-c", "", "write the Appendix-C per-link feature vectors (validated links) to this TSV file")
	timeout := fs.Duration("timeout", 0, "deadline for the whole run (0 = none)")
	expTimeout := fs.Duration("experiment-timeout", 0, "deadline per pipeline stage and per experiment renderer (0 = none)")
	retries := fs.Int("stage-retries", 0, "re-attempts for failed retryable stages")
	ckptDir := fs.String("checkpoint-dir", "", "durable artifact store directory; stage outputs are checkpointed here")
	resume := fs.Bool("resume", false, "reuse verified artifacts from -checkpoint-dir instead of recomputing")
	ckptVerify := fs.Bool("checkpoint-verify", false, "fsck the -checkpoint-dir store and exit (nonzero when corrupt or missing)")
	killAfter := fs.String("kill-after", "", "crash testing: exit 7 right after artifact NAME is durably checkpointed")
	reportOut := fs.String("report", "", "write the per-stage run report as JSON to this file")
	metricsOut := fs.String("metrics-out", "", "enable observability and write the metrics document (spans, counters, memstats) as JSON to this file")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile at the end of the run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *ckptVerify {
		if *ckptDir == "" {
			return fmt.Errorf("-checkpoint-verify requires -checkpoint-dir")
		}
		res, err := checkpoint.Fsck(*ckptDir)
		if err != nil {
			return err
		}
		if err := res.WriteText(os.Stdout); err != nil {
			return err
		}
		if !res.Clean() {
			return fmt.Errorf("checkpoint store %s is not clean", *ckptDir)
		}
		return nil
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	if *killAfter != "" {
		if *ckptDir == "" {
			return fmt.Errorf("-kill-after requires -checkpoint-dir (a crash without a store saves nothing to resume from)")
		}
		resilience.InjectAt("checkpoint.saved."+*killAfter, resilience.Fault{Kind: resilience.KindCrash})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *cpuProfile != "" {
		stopProf, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stopProf(); err != nil {
				fmt.Fprintln(os.Stderr, "breval:", err)
			}
		}()
	}

	// The collector rides the context: every resilience stage becomes
	// a span and the instrumented packages (bgp, inference, render)
	// find it via obs.From. Without -metrics-out col stays nil and all
	// instrumentation is a no-op.
	var col *obs.Collector
	if *metricsOut != "" {
		col = obs.NewCollector()
		ctx = obs.Into(ctx, col)
		col.SnapshotMemStats("start")
	}

	s := core.DefaultScenario(*seed)
	s.NumASes = *ases
	s.StageTimeout = *expTimeout
	s.StageRetries = *retries
	s.CheckpointDir = *ckptDir
	s.Resume = *resume
	switch *policy {
	case "ignore":
		s.Policy = validation.Ignore
	case "p2p-if-first":
		s.Policy = validation.P2PIfFirst
	case "always-p2c":
		s.Policy = validation.AlwaysP2C
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	if *algos != "" {
		s.Algorithms = strings.Split(*algos, ",")
	}
	if *retries < 0 {
		return fmt.Errorf("-stage-retries must be non-negative (got %d)", *retries)
	}
	var names []string
	if *only != "" {
		for _, exp := range strings.Split(*only, ",") {
			name := strings.TrimSpace(exp)
			if !core.KnownExperiment(name) {
				return fmt.Errorf("unknown experiment %q", name)
			}
			names = append(names, name)
		}
	}

	fmt.Fprintf(os.Stderr, "breval: generating world (%d ASes, seed %d) and running the pipeline...\n",
		s.NumASes, s.Seed)
	art, err := core.RunContext(ctx, s)
	report := &resilience.RunReport{}
	if art != nil && art.Report != nil {
		report = art.Report
	}
	if err != nil {
		// A fatal pipeline stage: nothing can render. Still emit the
		// metrics and the report so the failed stage is
		// machine-readable.
		return errors.Join(err,
			finishObs(col, report, *metricsOut, *memProfile),
			finishReport(report, *reportOut))
	}

	if *appcOut != "" {
		f, err := os.Create(*appcOut)
		if err != nil {
			return err
		}
		if err := hardlinks.WriteFeaturesTSV(f, art.AppendixC(nil)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "breval: wrote Appendix-C features to %s\n", *appcOut)
	}

	opts := core.RenderOptions{
		MinLinks:     *minLinks,
		StageTimeout: *expTimeout,
		StageRetries: *retries,
	}
	var renderRep *resilience.RunReport
	var renderErr error
	if len(names) == 0 {
		renderRep, renderErr = art.RenderAllContext(ctx, os.Stdout, opts)
	} else {
		opts.EvolveMonths = 6
		renderRep, renderErr = art.RenderOnlyContext(ctx, os.Stdout, names, opts)
	}
	if renderRep != nil {
		report.Merge(renderRep)
	}
	werr := errors.Join(
		finishObs(col, report, *metricsOut, *memProfile),
		finishReport(report, *reportOut))
	if renderErr != nil {
		return errors.Join(renderErr, werr)
	}
	if werr != nil {
		return werr
	}
	if len(report.Failed()) > 0 || len(art.Degraded) > 0 {
		return errPartial
	}
	return nil
}

// finishObs finalises the observability outputs: it takes the closing
// memstats snapshot, cross-embeds the metrics document and the run
// report (each side carries a copy without the back-reference so
// neither JSON encoding recurses), writes the document to metricsPath,
// and writes the heap profile when heapPath is set. A nil col (no
// -metrics-out) only writes the heap profile. Like finishReport, a
// failed write is an error: the caller asked for the file.
func finishObs(col *obs.Collector, report *resilience.RunReport, metricsPath, heapPath string) error {
	var errs []error
	if col != nil {
		col.SnapshotMemStats("end")
		doc := col.Export()
		doc.Report = &resilience.RunReport{Stages: report.Stages}
		inner := *doc
		inner.Report = nil
		report.Metrics = &inner
		if err := writeMetrics(doc, metricsPath); err != nil {
			errs = append(errs, err)
		}
	}
	if heapPath != "" {
		if err := obs.WriteHeapProfile(heapPath); err != nil {
			errs = append(errs, fmt.Errorf("write heap profile: %w", err))
		}
	}
	return errors.Join(errs...)
}

func writeMetrics(doc *obs.Document, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write metrics: %w", err)
	}
	if err := doc.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("write metrics: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("write metrics: %w", err)
	}
	return nil
}

// finishReport prints non-OK stages to stderr and writes the full
// JSON report when a path was given. A failed write is an error: the
// caller asked for a machine-readable record and did not get one.
func finishReport(report *resilience.RunReport, path string) error {
	if d := report.Degraded(); len(d) > 0 {
		fmt.Fprintln(os.Stderr, "breval: stage report (non-OK stages):")
		(&resilience.RunReport{Stages: d}).WriteText(os.Stderr)
	}
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write report: %w", err)
	}
	if err := report.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("write report: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("write report: %w", err)
	}
	return nil
}
