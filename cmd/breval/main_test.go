package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"breval/internal/asn"
	"breval/internal/checkpoint"
	"breval/internal/obs"
	"breval/internal/resilience"
	"breval/internal/runconfig"
	"breval/internal/wire"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-policy", "maybe"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	// A small world end to end, one cheap experiment.
	if err := run([]string{"-ases", "600", "-only", "clean", "-algos", "ASRank"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	// Name validation happens before the pipeline runs, so this is
	// cheap even though it exercises the -only path.
	if err := run([]string{"-ases", "600", "-only", "fig99", "-algos", "ASRank"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunPartialSuccess injects a panic into one inference algorithm:
// the run must render the surviving experiments, report the failed
// stage, and return the partial-success sentinel (exit code 3).
func TestRunPartialSuccess(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	defer resilience.ClearFaults()
	resilience.InjectAt("infer.Gao", resilience.Fault{Kind: resilience.KindPanic})
	report := filepath.Join(t.TempDir(), "report.json")
	err := run([]string{"-ases", "600", "-only", "clean",
		"-algos", "ASRank,Gao", "-report", report})
	if !errors.Is(err, errPartial) {
		t.Fatalf("err = %v, want errPartial", err)
	}
	b, rerr := os.ReadFile(report)
	if rerr != nil {
		t.Fatalf("report not written: %v", rerr)
	}
	if !strings.Contains(string(b), `"infer.Gao"`) ||
		!strings.Contains(string(b), `"panic"`) {
		t.Errorf("report does not name the failed stage:\n%s", b)
	}
}

// TestRunMetricsOut runs a small world with the observability flags on
// and checks the acceptance shape of the metrics document: a span per
// pipeline stage, the bgp worker counters (skipped origins/VPs are zero
// on a fault-free full graph), memstats snapshots, and the stage report
// cross-embedded on both sides.
func TestRunMetricsOut(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	report := filepath.Join(dir, "report.json")
	cpu := filepath.Join(dir, "cpu.pprof")
	heap := filepath.Join(dir, "heap.pprof")
	err := run([]string{"-ases", "600", "-only", "clean", "-algos", "ASRank",
		"-metrics-out", metrics, "-report", report,
		"-cpuprofile", cpu, "-memprofile", heap})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	b, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("metrics not written: %v", err)
	}
	var doc obs.Document
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("metrics is not valid JSON: %v", err)
	}

	for _, stage := range []string{
		"topo.generate", "bgp.propagate", "features.compute",
		"validation.extract", "validation.clean",
		"infer.ASRank", "render.clean",
	} {
		sp, ok := doc.FindSpan(stage)
		if !ok {
			t.Errorf("no span for stage %q", stage)
			continue
		}
		if sp.DurationMS < 0 {
			t.Errorf("span %q has negative duration %v", stage, sp.DurationMS)
		}
	}
	if _, ok := doc.FindSpan("bgp.propagate.workers"); !ok {
		t.Error("no bgp.propagate.workers substage span")
	}

	for name, want := range map[string]int64{
		"bgp.skipped_origins": 0,
		"bgp.skipped_vps":     0,
	} {
		got, ok := doc.Counters[name]
		if !ok {
			t.Errorf("counter %q missing (zero must still be recorded)", name)
		} else if got != want {
			t.Errorf("counter %q = %d, want %d", name, got, want)
		}
	}
	for _, name := range []string{
		"bgp.origins_propagated", "bgp.paths_emitted",
		"infer.asrank.runs", "render.bytes",
	} {
		if doc.Counters[name] <= 0 {
			t.Errorf("counter %q = %d, want > 0", name, doc.Counters[name])
		}
	}
	if h, ok := doc.Histograms["bgp.frontier_size"]; !ok || h.Count == 0 {
		t.Error("bgp.frontier_size histogram missing or empty")
	}

	if len(doc.MemStats) < 3 {
		t.Fatalf("memstats snapshots = %d, want >= 3", len(doc.MemStats))
	}
	labels := make(map[string]bool)
	for _, m := range doc.MemStats {
		labels[m.Label] = true
	}
	for _, l := range []string{"start", "pipeline.start", "end"} {
		if !labels[l] {
			t.Errorf("memstats snapshot %q missing", l)
		}
	}

	if doc.Report == nil {
		t.Error("metrics document does not embed the stage report")
	}
	rb, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	if !strings.Contains(string(rb), `"metrics"`) ||
		!strings.Contains(string(rb), `"bgp.paths_emitted"`) {
		t.Errorf("run report does not embed the metrics document:\n%.400s", rb)
	}

	for _, p := range []string{cpu, heap} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile not written: %v", err)
		} else if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestRunFatalStageFault: a fault in a fatal stage is not partial
// success — run returns a non-partial error naming the stage.
func TestRunFatalStageFault(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	defer resilience.ClearFaults()
	resilience.InjectAt("bgp.propagate", resilience.Fault{Kind: resilience.KindPanic})
	err := run([]string{"-ases", "600", "-only", "clean", "-algos", "ASRank"})
	if err == nil || errors.Is(err, errPartial) {
		t.Fatalf("err = %v, want fatal (non-partial) error", err)
	}
	if !strings.Contains(err.Error(), "bgp.propagate") {
		t.Errorf("error does not name the stage: %v", err)
	}
}

// crashHelperEnv selects the subprocess half of TestKillAfterExitCode:
// when set, the test binary runs breval with a crash point armed and
// the real CrashExit, so the process genuinely dies with code 7.
const crashHelperEnv = "BREVAL_CRASH_HELPER_DIR"

// TestKillAfterExitCode runs breval in a subprocess with
// -kill-after=paths: the process must die with the documented crash
// exit code 7 (not 0, not 1), leaving a checkpoint store behind, and a
// -resume run over that store must then succeed with identical output
// to a cold run.
func TestKillAfterExitCode(t *testing.T) {
	if dir := os.Getenv(crashHelperEnv); dir != "" {
		// Subprocess: this call must not return — the crash point calls
		// os.Exit(7) after the path set is durably saved.
		err := run([]string{"-ases", "600", "-only", "clean", "-algos", "ASRank",
			"-checkpoint-dir", dir, "-kill-after", "paths"})
		fmt.Fprintln(os.Stderr, "crash point did not fire:", err)
		os.Exit(0)
	}
	if testing.Short() {
		t.Skip("runs the pipeline in a subprocess")
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestKillAfterExitCode$")
	cmd.Env = append(os.Environ(), crashHelperEnv+"="+dir)
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != resilience.CrashExitCode {
		t.Fatalf("subprocess: err = %v, want exit code %d\noutput:\n%s",
			err, resilience.CrashExitCode, out)
	}

	// The interrupted store must hold the path set and survive fsck.
	if _, err := os.Stat(filepath.Join(dir, "paths")); err != nil {
		t.Fatalf("crashed run left no paths artifact: %v", err)
	}
	res, err := checkpoint.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("store not clean after crash: corrupt=%v missing=%v", res.Corrupt, res.Missing)
	}

	// Resume and compare against a cold run: stdout must match.
	cold := captureRun(t, []string{"-ases", "600", "-only", "clean", "-algos", "ASRank"})
	resumed := captureRun(t, []string{"-ases", "600", "-only", "clean", "-algos", "ASRank",
		"-checkpoint-dir", dir, "-resume"})
	if cold != resumed {
		t.Errorf("resumed output differs from cold run:\ncold:\n%s\nresumed:\n%s", cold, resumed)
	}
}

// captureRun invokes run with stdout redirected to a pipe and returns
// what it printed.
func captureRun(t *testing.T, args []string) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(args)
	os.Stdout = old
	w.Close()
	b, rerr := io.ReadAll(r)
	r.Close()
	if runErr != nil {
		t.Fatalf("run %v: %v", args, runErr)
	}
	if rerr != nil {
		t.Fatal(rerr)
	}
	return string(b)
}

// TestCheckpointVerifyFlag: -checkpoint-verify passes on a clean store
// and fails (nonzero exit via error return) after a byte flip.
func TestCheckpointVerifyFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	dir := t.TempDir()
	if err := run([]string{"-ases", "600", "-only", "clean", "-algos", "ASRank",
		"-checkpoint-dir", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-checkpoint-dir", dir, "-checkpoint-verify"}); err != nil {
		t.Fatalf("fsck of clean store failed: %v", err)
	}

	path := filepath.Join(dir, "paths")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/3] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-checkpoint-dir", dir, "-checkpoint-verify"})
	if err == nil || !strings.Contains(err.Error(), "not clean") {
		t.Fatalf("fsck did not flag the corrupted store: %v", err)
	}

	// A resume run over the corrupted store still succeeds: the bad
	// artifact is quarantined and regenerated.
	if err := run([]string{"-ases", "600", "-only", "clean", "-algos", "ASRank",
		"-checkpoint-dir", dir, "-resume"}); err != nil {
		t.Fatalf("resume over corrupted store: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine")); err != nil {
		t.Errorf("no quarantine directory after corrupted resume: %v", err)
	}
}

// TestCheckpointFlagValidation: the checkpoint flags guard their
// preconditions before any expensive work happens.
func TestCheckpointFlagValidation(t *testing.T) {
	if err := run([]string{"-resume"}); err == nil {
		t.Error("-resume without -checkpoint-dir accepted")
	}
	if err := run([]string{"-checkpoint-verify"}); err == nil {
		t.Error("-checkpoint-verify without -checkpoint-dir accepted")
	}
	if err := run([]string{"-kill-after", "paths"}); err == nil {
		t.Error("-kill-after without -checkpoint-dir accepted")
	}
	resilience.ClearFaults()
}

// TestReportEmbedsCheckpointStats: with a checkpoint store active the
// -report JSON carries the store's hit/miss/quarantine counters.
func TestReportEmbedsCheckpointStats(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	dir := t.TempDir()
	report := filepath.Join(t.TempDir(), "report.json")
	if err := run([]string{"-ases", "600", "-only", "clean", "-algos", "ASRank",
		"-checkpoint-dir", dir}); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if err := run([]string{"-ases", "600", "-only", "clean", "-algos", "ASRank",
		"-checkpoint-dir", dir, "-resume", "-report", report}); err != nil {
		t.Fatalf("resume run: %v", err)
	}
	b, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var doc struct {
		Checkpoint *checkpoint.Stats `json:"checkpoint"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if doc.Checkpoint == nil {
		t.Fatalf("report carries no checkpoint stats:\n%.400s", b)
	}
	if doc.Checkpoint.Hits == 0 {
		t.Errorf("resume run reports zero checkpoint hits: %+v", doc.Checkpoint)
	}
}

// TestExitCodeTable pins the documented exit-code contract: the four
// codes never alias, shed beats partial when both apply, and a fatal
// error beats both.
func TestExitCodeTable(t *testing.T) {
	codes := map[string]int{
		"ok":      exitCode(nil),
		"fatal":   exitCode(errors.New("boom")),
		"partial": exitCode(errPartial),
		"shed":    exitCode(errShed),
		"crash":   resilience.CrashExitCode,
	}
	want := map[string]int{"ok": 0, "fatal": 1, "partial": 3, "shed": 8, "crash": 7}
	seen := map[int]string{}
	for name, code := range codes {
		if code != want[name] {
			t.Errorf("exit code for %s = %d, want %d", name, code, want[name])
		}
		if prev, dup := seen[code]; dup {
			t.Errorf("exit codes alias: %s and %s both map to %d", prev, name, code)
		}
		seen[code] = name
	}
	// Precedence: a run that is both shed and partial exits 8, and
	// wrapping never loses the sentinel.
	if got := exitCode(errors.Join(errShed, errPartial)); got != exitShed {
		t.Errorf("shed+partial = %d, want %d (shed wins)", got, exitShed)
	}
	if got := exitCode(fmt.Errorf("context: %w", errPartial)); got != exitPartial {
		t.Errorf("wrapped partial = %d, want %d", got, exitPartial)
	}
}

// TestGovernFlagValidation: the governor flags guard their
// preconditions before any expensive work happens.
func TestGovernFlagValidation(t *testing.T) {
	defer resilience.ClearFaults()
	if err := run([]string{"-mem-soft-mb", "-1"}); err == nil {
		t.Error("negative watermark accepted")
	}
	if err := run([]string{"-mem-soft-mb", "512", "-mem-hard-mb", "256"}); err == nil {
		t.Error("hard watermark below soft accepted")
	}
	if err := run([]string{"-inject-pressure", "hard"}); err == nil {
		t.Error("-inject-pressure hard without -mem-hard-mb accepted")
	}
	if err := run([]string{"-inject-pressure", "soft"}); err == nil {
		t.Error("-inject-pressure soft without -mem-soft-mb accepted")
	}
	if err := run([]string{"-mem-soft-mb", "512", "-mem-hard-mb", "1024",
		"-inject-pressure", "sideways"}); err == nil {
		t.Error("unknown -inject-pressure mode accepted")
	}
}

// TestInjectPressureHardSheds: an injected hard-watermark crossing
// must complete the run (no OOM, no lost artifacts), record the shed
// in the report, and surface the dedicated exit-8 sentinel — never
// the partial-success one.
func TestInjectPressureHardSheds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	defer resilience.ClearFaults()
	report := filepath.Join(t.TempDir(), "report.json")
	err := run([]string{"-ases", "600", "-only", "clean", "-algos", "ASRank",
		"-mem-soft-mb", "4096", "-mem-hard-mb", "8192",
		"-inject-pressure", "hard", "-report", report})
	if !errors.Is(err, errShed) {
		t.Fatalf("err = %v, want errShed", err)
	}
	if errors.Is(err, errPartial) {
		t.Fatal("shed run also carries the partial sentinel; codes would alias")
	}
	b, rerr := os.ReadFile(report)
	if rerr != nil {
		t.Fatalf("report not written: %v", rerr)
	}
	if !strings.Contains(string(b), `"govern.shed"`) || !strings.Contains(string(b), `"shed"`) {
		t.Errorf("report does not record the shed:\n%.400s", b)
	}
}

// TestInjectPressureSoftStaysOK: soft pressure throttles but never
// changes the exit code — the run is a full success.
func TestInjectPressureSoftStaysOK(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	defer resilience.ClearFaults()
	if err := run([]string{"-ases", "600", "-only", "clean", "-algos", "ASRank",
		"-mem-soft-mb", "4096", "-inject-pressure", "soft"}); err != nil {
		t.Fatalf("soft pressure changed the outcome: %v", err)
	}
}

// TestSoakFlag: a tiny in-process soak through the CLI path. The
// heavy multi-storm coverage lives in internal/govern/chaos; this
// pins the flag plumbing and the success summary.
func TestSoakFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline several times")
	}
	out := captureRun(t, []string{"-ases", "450", "-algos", "ASRank,Gao",
		"-soak", "1", "-chaos-seed", "42"})
	if !strings.Contains(out, "soak ok: 1/1 storms") {
		t.Errorf("soak summary missing:\n%s", out)
	}
}

// TestVersionFlag: -version prints the build's identity and runs
// nothing else.
func TestVersionFlag(t *testing.T) {
	out := captureRun(t, []string{"-version"})
	if !strings.Contains(out, "breval") {
		t.Errorf("-version output does not name the module: %q", out)
	}
}

// TestFlagConfigSharesServerIdentity: the CLI's flag surface resolves
// through runconfig, so a flag spelling and its JSON equivalent agree
// on the run's semantic identity (and therefore its checkpoint key).
func TestFlagConfigSharesServerIdentity(t *testing.T) {
	fs := flag.NewFlagSet("breval", flag.ContinueOnError)
	cfg := runconfig.Default()
	cfg.RegisterFlags(fs)
	if err := fs.Parse([]string{"-seed", "7", "-ases", "600", "-only", "clean", "-algos", "asrank"}); err != nil {
		t.Fatal(err)
	}
	cfg.Normalize()
	jcfg, err := runconfig.ParseJSON([]byte(`{"seed":7,"ases":600,"only":["clean"],"algos":["ASRank"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hash() != jcfg.Hash() {
		t.Errorf("flag and JSON spellings disagree on identity:\n  %s\n  %s", cfg.Hash(), jcfg.Hash())
	}
}

// flipEveryNth rewrites every nth record's first AS-path hop to a
// reserved ASN, returning the damaged dump and the complement (the
// clean dump minus exactly those records) — the same operation
// cmd/ribflip performs for the shell smoke.
func flipEveryNth(t *testing.T, data []byte, n int) (damaged, pruned []byte, hit int) {
	t.Helper()
	rr := wire.NewRIBReader(bytes.NewReader(data))
	for i := 0; ; i++ {
		if _, err := rr.Read(); err != nil {
			if err == io.EOF {
				return damaged, pruned, hit
			}
			t.Fatalf("clean dump damaged at record %d: %v", i, err)
		}
		frame := rr.LastFrame()
		if i%n != 0 {
			damaged = append(damaged, frame...)
			pruned = append(pruned, frame...)
			continue
		}
		hit++
		rec := append([]byte(nil), frame...)
		pfxBytes := (int(rec[12]) + 7) / 8
		off := 12 + 1 + pfxBytes + 1
		binary.BigEndian.PutUint32(rec[off:off+4], uint32(asn.Max))
		damaged = append(damaged, rec...)
	}
}

// TestRunIngestExitCodes is the PR's acceptance test at the binary
// boundary: a dump corrupted within the error budget completes with a
// quarantine report and output byte-identical to the clean dump minus
// those records; over budget the run returns errPartial (exit 3),
// never success.
func TestRunIngestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline several times")
	}
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.rib")
	base := []string{"-ases", "600", "-only", "clean", "-algos", "ASRank"}
	captureRun(t, append(base, "-rib-out", clean))

	data, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	damagedBytes, prunedBytes, hit := flipEveryNth(t, data, 10)
	if hit == 0 {
		t.Fatal("fixture dump has no records")
	}
	damaged := filepath.Join(dir, "damaged.rib")
	pruned := filepath.Join(dir, "pruned.rib")
	if err := os.WriteFile(damaged, damagedBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pruned, prunedBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	// Over budget (strict default): partial success, never clean exit.
	if err := run(append(base, "-rib-in", damaged)); !errors.Is(err, errPartial) {
		t.Fatalf("over-budget run: err = %v, want errPartial", err)
	}

	// Within budget: clean exit, a quarantine ledger line per damaged
	// record, and byte-identical output to the pruned dump's run.
	ledger := filepath.Join(dir, "quarantine.jsonl")
	outDamaged := filepath.Join(dir, "out-damaged.rib")
	outPruned := filepath.Join(dir, "out-pruned.rib")
	stdoutDamaged := captureRun(t, append(base,
		"-rib-in", damaged, "-ingest-max-bad-frac", "0.5",
		"-ingest-quarantine", ledger, "-rib-out", outDamaged))
	stdoutPruned := captureRun(t, append(base, "-rib-in", pruned, "-rib-out", outPruned))

	raw, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatalf("quarantine ledger not written: %v", err)
	}
	if lines := strings.Count(string(raw), "\n"); lines != hit {
		t.Fatalf("%d ledger lines, want %d", lines, hit)
	}
	a, err := os.ReadFile(outDamaged)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(outPruned)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("damaged-within-budget output differs from clean-minus-quarantined output")
	}
	if stdoutDamaged != stdoutPruned {
		t.Fatal("rendered experiments differ between damaged-within-budget and pruned runs")
	}
}
