package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"breval/internal/resilience"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-policy", "maybe"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	// A small world end to end, one cheap experiment.
	if err := run([]string{"-ases", "600", "-only", "clean", "-algos", "ASRank"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	// Name validation happens before the pipeline runs, so this is
	// cheap even though it exercises the -only path.
	if err := run([]string{"-ases", "600", "-only", "fig99", "-algos", "ASRank"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunPartialSuccess injects a panic into one inference algorithm:
// the run must render the surviving experiments, report the failed
// stage, and return the partial-success sentinel (exit code 3).
func TestRunPartialSuccess(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	defer resilience.ClearFaults()
	resilience.InjectAt("infer.Gao", resilience.Fault{Kind: resilience.KindPanic})
	report := filepath.Join(t.TempDir(), "report.json")
	err := run([]string{"-ases", "600", "-only", "clean",
		"-algos", "ASRank,Gao", "-report", report})
	if !errors.Is(err, errPartial) {
		t.Fatalf("err = %v, want errPartial", err)
	}
	b, rerr := os.ReadFile(report)
	if rerr != nil {
		t.Fatalf("report not written: %v", rerr)
	}
	if !strings.Contains(string(b), `"infer.Gao"`) ||
		!strings.Contains(string(b), `"panic"`) {
		t.Errorf("report does not name the failed stage:\n%s", b)
	}
}

// TestRunFatalStageFault: a fault in a fatal stage is not partial
// success — run returns a non-partial error naming the stage.
func TestRunFatalStageFault(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	defer resilience.ClearFaults()
	resilience.InjectAt("bgp.propagate", resilience.Fault{Kind: resilience.KindPanic})
	err := run([]string{"-ases", "600", "-only", "clean", "-algos", "ASRank"})
	if err == nil || errors.Is(err, errPartial) {
		t.Fatalf("err = %v, want fatal (non-partial) error", err)
	}
	if !strings.Contains(err.Error(), "bgp.propagate") {
		t.Errorf("error does not name the stage: %v", err)
	}
}
