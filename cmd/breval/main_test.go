package main

import (
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-policy", "maybe"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	// A small world end to end, one cheap experiment.
	if err := run([]string{"-ases", "600", "-only", "clean", "-algos", "ASRank"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline")
	}
	if err := run([]string{"-ases", "600", "-only", "fig99", "-algos", "ASRank"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
