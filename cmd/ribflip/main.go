// Command ribflip deterministically damages an MRT RIB dump for
// ingestion testing, and converts the repo's internal framing into
// real RFC 6396 TABLE_DUMP_V2 so the drills cover both formats. It
// rewrites every Nth record of a clean dump in a way internal/ingest
// must quarantine, and can emit the complement dump — the clean stream
// minus exactly those records — alongside. A run over the damaged dump
// (with budget headroom) and a run over the complement must then
// produce byte-identical outputs; the CHECK_INGEST smoke in
// scripts/check.sh asserts exactly that.
//
// Usage:
//
//	ribflip -in clean.rib -out damaged.rib [-complement pruned.rib]
//	        [-every N] [-mode unknown-as|type|attr-flags|attr-len|peer-index]
//	ribflip -in clean.rib -out clean.v2.rib -to-v2
//
// Modes over internal framing:
//
//	unknown-as (default) — overwrite the record's first AS-path hop
//	  with 0xFFFFFFFF (a reserved ASN), which ingest quarantines as
//	  kind "unknown-as". The frame stays well-formed, so the stream
//	  never desynchronizes.
//	type — flip the MRT type field to an unknown code. The wire reader
//	  consumes the full frame and reports a skippable bad record,
//	  which ingest quarantines under the in-frame damage kind
//	  ("bad-path"). The stream stays in sync.
//
// Modes over TABLE_DUMP_V2:
//
//	attr-flags — flip the extended-length bit on the entry's first
//	  path attribute, so its length field is reinterpreted and the TLV
//	  walk overruns ("bad-attribute", in sync).
//	attr-len — overwrite the first attribute's length with 0xFF so the
//	  value overruns the attribute block ("bad-attribute", in sync).
//	peer-index — increment the PEER_INDEX_TABLE's peer count so the
//	  table walks past its body. The whole file desynchronizes
//	  ("bad-peer-index"), so -every is ignored and the complement
//	  keeps the intact table.
//
// -to-v2 converts a clean internal dump into TABLE_DUMP_V2 (one peer
// per vantage point, one single-entry RIB record per path, community
// attributes attached), which is how the v2 fixtures for the modes
// above are made in the first place.
//
// The record count and damaged count are printed to stderr as
// "total=N damaged=M" for scripts to parse, keeping stdout free for a
// future pipe mode (`-out -`). Input must be a plain (not
// gzip-compressed) dump; -mode picks the input format implicitly.
package main

import (
	"bufio"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"breval/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "ribflip: %v\n", err)
		os.Exit(1)
	}
}

// v2Modes maps each TABLE_DUMP_V2 damage mode to true; the remaining
// modes operate on internal framing.
var v2Modes = map[string]bool{"attr-flags": true, "attr-len": true, "peer-index": true}

func run(args []string) error {
	fs := flag.NewFlagSet("ribflip", flag.ContinueOnError)
	in := fs.String("in", "", "clean input RIB dump (required)")
	out := fs.String("out", "", "damaged (or converted) output dump (required)")
	comp := fs.String("complement", "", "optional output dump holding the clean stream minus the damaged records")
	every := fs.Int("every", 10, "damage every Nth record (records 0, N, 2N, ...)")
	mode := fs.String("mode", "unknown-as", "damage mode: unknown-as, type, attr-flags, attr-len or peer-index")
	toV2 := fs.Bool("to-v2", false, "convert the internal-framing input to RFC 6396 TABLE_DUMP_V2 instead of damaging it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("-in and -out are required")
	}
	if *every < 1 {
		return fmt.Errorf("-every must be >= 1 (got %d)", *every)
	}
	if !*toV2 && *mode != "unknown-as" && *mode != "type" && !v2Modes[*mode] {
		return fmt.Errorf("-mode must be unknown-as, type, attr-flags, attr-len or peer-index (got %q)", *mode)
	}
	if *toV2 && *comp != "" {
		return fmt.Errorf("-to-v2 converts, it does not damage; -complement makes no sense")
	}

	src, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer src.Close()

	dst, err := os.Create(*out)
	if err != nil {
		return err
	}
	dw := bufio.NewWriter(dst)
	var cw *bufio.Writer
	var cdst *os.File
	if *comp != "" {
		cdst, err = os.Create(*comp)
		if err != nil {
			dst.Close()
			return err
		}
		cw = bufio.NewWriter(cdst)
	}

	var total, damaged int
	switch {
	case *toV2:
		total, err = convert(src, dw)
	case v2Modes[*mode]:
		total, damaged, err = flipV2(src, dw, cw, *every, *mode)
	default:
		total, damaged, err = flip(src, dw, cw, *every, *mode)
	}
	if err == nil {
		err = dw.Flush()
	}
	if err == nil && cw != nil {
		err = cw.Flush()
	}
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if cdst != nil {
		if cerr := cdst.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "total=%d damaged=%d\n", total, damaged)
	return nil
}

// convert renders a clean internal-framing dump as TABLE_DUMP_V2.
func convert(r io.Reader, dw *bufio.Writer) (total int, err error) {
	ps, err := wire.ReadRIB(r)
	if err != nil {
		return 0, fmt.Errorf("clean input required: %w", err)
	}
	if err := wire.WriteTableDumpV2(dw, ps, 1); err != nil {
		return 0, err
	}
	return ps.Len(), nil
}

// flip streams internal-framing records from r, damaging every Nth one
// into dw and writing the untouched remainder to cw (when non-nil).
func flip(r io.Reader, dw, cw *bufio.Writer, every int, mode string) (total, damaged int, err error) {
	rr := wire.NewRIBReader(r)
	for {
		_, rerr := rr.Read()
		if rerr == io.EOF {
			return total, damaged, nil
		}
		if rerr != nil {
			// The input must be clean: any damage here means the caller
			// fed us an already-corrupt dump and the complement would
			// be meaningless.
			return total, damaged, fmt.Errorf("clean input required: %w", rerr)
		}
		frame := rr.LastFrame()
		hit := total%every == 0
		total++
		if !hit {
			dw.Write(frame)
			if cw != nil {
				cw.Write(frame)
			}
			continue
		}
		damaged++
		buf := make([]byte, len(frame))
		copy(buf, frame)
		if err := damage(buf, mode); err != nil {
			return total, damaged, fmt.Errorf("record %d: %w", total-1, err)
		}
		if _, err := dw.Write(buf); err != nil {
			return total, damaged, err
		}
	}
}

// damage mutates one full internal-framing frame (header+body) in
// place.
func damage(frame []byte, mode string) error {
	switch mode {
	case "type":
		// An unknown MRT type: the reader consumes the frame and
		// reports a skippable bad record.
		binary.BigEndian.PutUint16(frame[4:6], 0x4242)
		return nil
	case "unknown-as":
		// Body: prefixBits(1) | prefix bytes | hopCount(1) | 4B hops.
		body := frame[12:]
		if len(body) < 2 {
			return fmt.Errorf("body too short to damage (%d bytes)", len(body))
		}
		pfxBytes := (int(body[0]) + 7) / 8
		hopOff := 1 + pfxBytes + 1
		if len(body) < hopOff+4 {
			return fmt.Errorf("record has no path hop to damage")
		}
		binary.BigEndian.PutUint32(body[hopOff:hopOff+4], 0xFFFFFFFF)
		return nil
	}
	return fmt.Errorf("unknown mode %q", mode)
}

// maxV2Body mirrors the decoder's TABLE_DUMP_V2 body bound; a clean
// fixture never approaches it.
const maxV2Body = 1 << 20

// flipV2 streams raw TABLE_DUMP_V2 frames from r, damaging every Nth
// RIB record (or, for peer-index mode, the leading table) into dw and
// writing the untouched remainder to cw. The complement always keeps
// the intact peer-index table: it is infrastructure, not a record.
func flipV2(r io.Reader, dw, cw *bufio.Writer, every int, mode string) (total, damaged int, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	for index := 0; ; index++ {
		frame, rerr := readV2Frame(br)
		if rerr == io.EOF {
			if mode == "peer-index" && damaged == 0 {
				return total, damaged, errors.New("no PEER_INDEX_TABLE to damage")
			}
			return total, damaged, nil
		}
		if rerr != nil {
			return total, damaged, fmt.Errorf("clean input required: frame %d: %w", index, rerr)
		}
		typ := binary.BigEndian.Uint16(frame[4:6])
		sub := binary.BigEndian.Uint16(frame[6:8])
		if typ != 13 {
			return total, damaged, fmt.Errorf("clean input required: frame %d has MRT type %d", index, typ)
		}
		switch sub {
		case 1: // PEER_INDEX_TABLE
			if mode == "peer-index" && damaged == 0 {
				buf := append([]byte(nil), frame...)
				if derr := damagePeerTable(buf); derr != nil {
					return total, damaged, derr
				}
				damaged++
				dw.Write(buf)
				if cw != nil {
					cw.Write(frame) // the complement keeps the intact table
				}
				continue
			}
			dw.Write(frame)
			if cw != nil {
				cw.Write(frame)
			}
		case 2, 4, 8, 10: // unicast RIB records (plus ADDPATH)
			hit := mode != "peer-index" && total%every == 0
			total++
			if !hit {
				dw.Write(frame)
				if cw != nil {
					cw.Write(frame)
				}
				continue
			}
			damaged++
			buf := append([]byte(nil), frame...)
			if derr := damageV2Record(buf, sub, mode); derr != nil {
				return total, damaged, fmt.Errorf("record %d: %w", total-1, derr)
			}
			dw.Write(buf)
		default:
			return total, damaged, fmt.Errorf("clean input required: frame %d has subtype %d", index, sub)
		}
	}
}

// readV2Frame reads one raw MRT frame (header+body).
func readV2Frame(br *bufio.Reader) ([]byte, error) {
	var hdr [12]byte
	if n, err := io.ReadFull(br, hdr[:]); err != nil {
		if n == 0 && errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("truncated header: %w", err)
	}
	blen := binary.BigEndian.Uint32(hdr[8:12])
	if blen > maxV2Body {
		return nil, fmt.Errorf("oversize body (%d bytes)", blen)
	}
	frame := make([]byte, 12+blen)
	copy(frame, hdr[:])
	if _, err := io.ReadFull(br, frame[12:]); err != nil {
		return nil, fmt.Errorf("truncated body: %w", err)
	}
	return frame, nil
}

// damagePeerTable bumps the peer count so the table walk runs past the
// body: a whole-file desync once ingested.
func damagePeerTable(frame []byte) error {
	body := frame[12:]
	if len(body) < 8 {
		return errors.New("peer table too short to damage")
	}
	viewLen := int(binary.BigEndian.Uint16(body[4:6]))
	off := 6 + viewLen
	if off+2 > len(body) {
		return errors.New("peer table too short to damage")
	}
	count := binary.BigEndian.Uint16(body[off : off+2])
	binary.BigEndian.PutUint16(body[off:off+2], count+1)
	return nil
}

// damageV2Record corrupts the first path attribute of a single-entry
// RIB record. The complement drops whole records, so multi-entry
// records cannot be damaged coherently and are refused.
func damageV2Record(frame []byte, sub uint16, mode string) error {
	body := frame[12:]
	if len(body) < 7 {
		return errors.New("record too short to damage")
	}
	pb := (int(body[4]) + 7) / 8
	off := 5 + pb
	if off+2 > len(body) {
		return errors.New("record too short to damage")
	}
	if count := binary.BigEndian.Uint16(body[off : off+2]); count != 1 {
		return fmt.Errorf("record holds %d entries; the complement needs single-entry records", count)
	}
	entryHdr := 8
	if sub == 8 || sub == 10 {
		entryHdr = 12
	}
	a0 := off + 2 + entryHdr
	if a0+3 > len(body) {
		return errors.New("record has no attribute to damage")
	}
	switch mode {
	case "attr-flags":
		body[a0] ^= 0x10 // flip the extended-length flag
		return nil
	case "attr-len":
		body[a0+2] = 0xFF // value now overruns the attribute block
		return nil
	}
	return fmt.Errorf("unknown mode %q", mode)
}
