// Command ribflip deterministically damages an MRT RIB dump for
// ingestion testing. It rewrites every Nth record of a clean dump in
// a way internal/ingest must quarantine, and can emit the complement
// dump — the clean stream minus exactly those records — alongside.
// A run over the damaged dump (with budget headroom) and a run over
// the complement must then produce byte-identical outputs; the
// CHECK_INGEST smoke in scripts/check.sh asserts exactly that.
//
// Usage:
//
//	ribflip -in clean.rib -out damaged.rib [-complement pruned.rib]
//	        [-every N] [-mode unknown-as|type]
//
// Modes:
//
//	unknown-as (default) — overwrite the record's first AS-path hop
//	  with 0xFFFFFFFF (a reserved ASN), which ingest quarantines as
//	  kind "unknown-as". The frame stays well-formed, so the stream
//	  never desynchronizes.
//	type — flip the MRT type field to an unknown code. The wire reader
//	  consumes the full frame and reports a skippable bad record,
//	  which ingest quarantines under the in-frame damage kind
//	  ("bad-path"). The stream stays in sync.
//
// The record count and damaged count are printed to stderr as
// "total=N damaged=M" for scripts to parse, keeping stdout free for a
// future pipe mode (`-out -`). Input must be a plain (not
// gzip-compressed) dump.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"

	"breval/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "ribflip: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ribflip", flag.ContinueOnError)
	in := fs.String("in", "", "clean input RIB dump (required)")
	out := fs.String("out", "", "damaged output dump (required)")
	comp := fs.String("complement", "", "optional output dump holding the clean stream minus the damaged records")
	every := fs.Int("every", 10, "damage every Nth record (records 0, N, 2N, ...)")
	mode := fs.String("mode", "unknown-as", "damage mode: unknown-as or type")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("-in and -out are required")
	}
	if *every < 1 {
		return fmt.Errorf("-every must be >= 1 (got %d)", *every)
	}
	if *mode != "unknown-as" && *mode != "type" {
		return fmt.Errorf("-mode must be unknown-as or type (got %q)", *mode)
	}

	src, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer src.Close()

	dst, err := os.Create(*out)
	if err != nil {
		return err
	}
	dw := bufio.NewWriter(dst)
	var cw *bufio.Writer
	var cdst *os.File
	if *comp != "" {
		cdst, err = os.Create(*comp)
		if err != nil {
			dst.Close()
			return err
		}
		cw = bufio.NewWriter(cdst)
	}

	total, damaged, err := flip(src, dw, cw, *every, *mode)
	if err == nil {
		err = dw.Flush()
	}
	if err == nil && cw != nil {
		err = cw.Flush()
	}
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if cdst != nil {
		if cerr := cdst.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "total=%d damaged=%d\n", total, damaged)
	return nil
}

// flip streams records from r, damaging every Nth one into dw and
// writing the untouched remainder to cw (when non-nil).
func flip(r io.Reader, dw, cw *bufio.Writer, every int, mode string) (total, damaged int, err error) {
	rr := wire.NewRIBReader(r)
	for {
		_, rerr := rr.Read()
		if rerr == io.EOF {
			return total, damaged, nil
		}
		if rerr != nil {
			// The input must be clean: any damage here means the caller
			// fed us an already-corrupt dump and the complement would
			// be meaningless.
			return total, damaged, fmt.Errorf("clean input required: %w", rerr)
		}
		frame := rr.LastFrame()
		hit := total%every == 0
		total++
		if !hit {
			dw.Write(frame)
			if cw != nil {
				cw.Write(frame)
			}
			continue
		}
		damaged++
		buf := make([]byte, len(frame))
		copy(buf, frame)
		if err := damage(buf, mode); err != nil {
			return total, damaged, fmt.Errorf("record %d: %w", total-1, err)
		}
		if _, err := dw.Write(buf); err != nil {
			return total, damaged, err
		}
	}
}

// damage mutates one full frame (header+body) in place.
func damage(frame []byte, mode string) error {
	switch mode {
	case "type":
		// An unknown MRT type: the reader consumes the frame and
		// reports a skippable bad record.
		binary.BigEndian.PutUint16(frame[4:6], 0x4242)
		return nil
	case "unknown-as":
		// Body: prefixBits(1) | prefix bytes | hopCount(1) | 4B hops.
		body := frame[12:]
		if len(body) < 2 {
			return fmt.Errorf("body too short to damage (%d bytes)", len(body))
		}
		pfxBytes := (int(body[0]) + 7) / 8
		hopOff := 1 + pfxBytes + 1
		if len(body) < hopOff+4 {
			return fmt.Errorf("record has no path hop to damage")
		}
		binary.BigEndian.PutUint32(body[hopOff:hopOff+4], 0xFFFFFFFF)
		return nil
	}
	return fmt.Errorf("unknown mode %q", mode)
}
