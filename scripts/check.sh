#!/bin/sh
# check.sh — the repo's full verification gate: vet, build, tests with
# the race detector, and short fuzz smokes over the wire-format
# decoders. CI and pre-commit both run this.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
# internal/core's full-scale render test runs the whole pipeline and
# needs well over Go's default 10m package timeout under the race
# detector.
go test -race -timeout 40m ./...

echo "== fuzz smoke (5s each)"
go test ./internal/wire -run '^$' -fuzz '^FuzzUnmarshalUpdate$' -fuzztime 5s
go test ./internal/wire -run '^$' -fuzz '^FuzzRIBReader$' -fuzztime 5s

echo "== bench smoke (1 iteration, cheap substrate benchmarks)"
# One iteration of the substrate benchmarks keeps the suite compiling
# and runnable without paying for the full-scale fixture; `make bench`
# runs the whole sweep and records BENCH_<date>.json.
go test -run '^$' -bench '^(BenchmarkWorldGeneration|BenchmarkRoutePropagation|BenchmarkUpdateMarshal|BenchmarkUpdateUnmarshal)$' -benchtime 1x .

echo "check: OK"
