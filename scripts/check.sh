#!/bin/sh
# check.sh — the repo's full verification gate: vet, build, tests with
# the race detector, short fuzz smokes over the wire-format and
# checkpoint-manifest decoders, and a crash/resume drill. CI and
# pre-commit both run this.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
# internal/core's full-scale render test runs the whole pipeline and
# needs well over Go's default 10m package timeout under the race
# detector.
go test -race -timeout 40m ./...

echo "== fuzz smoke (5s each)"
go test ./internal/wire -run '^$' -fuzz '^FuzzUnmarshalUpdate$' -fuzztime 5s
go test ./internal/wire -run '^$' -fuzz '^FuzzRIBReader$' -fuzztime 5s
go test ./internal/wire -run '^$' -fuzz '^FuzzTableDumpV2$' -fuzztime 5s
go test ./internal/checkpoint -run '^$' -fuzz '^FuzzDecodeManifest$' -fuzztime 5s
go test ./internal/ingest -run '^$' -fuzz '^FuzzIngestReader$' -fuzztime 5s

echo "== crash/resume smoke"
# Kill breval right after the path set is checkpointed (documented
# exit code 7), then resume from the interrupted store and require
# byte-identical experiment output to a cold run. See
# docs/checkpointing.md.
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
go build -o "$SMOKE/breval" ./cmd/breval
set +e
"$SMOKE/breval" -ases 600 -only clean -algos ASRank \
	-checkpoint-dir "$SMOKE/ckpt" -kill-after paths >/dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 7 ]; then
	echo "crash smoke: expected exit 7, got $code" >&2
	exit 1
fi
"$SMOKE/breval" -checkpoint-dir "$SMOKE/ckpt" -checkpoint-verify >/dev/null
"$SMOKE/breval" -ases 600 -only clean -algos ASRank 2>/dev/null >"$SMOKE/cold.txt"
"$SMOKE/breval" -ases 600 -only clean -algos ASRank \
	-checkpoint-dir "$SMOKE/ckpt" -resume 2>/dev/null >"$SMOKE/resumed.txt"
cmp "$SMOKE/cold.txt" "$SMOKE/resumed.txt" || {
	echo "crash smoke: resumed output differs from cold run" >&2
	exit 1
}

echo "== brevald serve/drain smoke (time-boxed)"
# Start the daemon on an ephemeral port, run one request through the
# full pipeline, check liveness, SIGTERM it, and require a clean drain
# (exit 0). See docs/service.md.
go build -o "$SMOKE/brevald" ./cmd/brevald
"$SMOKE/brevald" -addr 127.0.0.1:0 -data-dir "$SMOKE/brevald-data" \
	2>"$SMOKE/brevald.log" &
BREVALD_PID=$!
addr=""
for _ in $(seq 1 50); do
	addr=$(sed -n 's/.*listening on \([^ ]*\).*/\1/p' "$SMOKE/brevald.log")
	[ -n "$addr" ] && break
	kill -0 "$BREVALD_PID" 2>/dev/null || {
		echo "brevald smoke: daemon died at startup" >&2
		cat "$SMOKE/brevald.log" >&2
		exit 1
	}
	sleep 0.1
done
[ -n "$addr" ] || { echo "brevald smoke: no listen address after 5s" >&2; exit 1; }
curl -sf --max-time 120 -X POST -d '{"ases":600,"only":["clean"],"algos":["ASRank"]}' \
	"http://$addr/run" >"$SMOKE/served.json" || {
	echo "brevald smoke: /run failed" >&2
	cat "$SMOKE/brevald.log" >&2
	exit 1
}
grep -q '"output"' "$SMOKE/served.json" || {
	echo "brevald smoke: /run response carries no output" >&2
	exit 1
}
curl -sf --max-time 10 "http://$addr/healthz" >/dev/null || {
	echo "brevald smoke: /healthz failed" >&2
	exit 1
}
kill -TERM "$BREVALD_PID"
drain_code=0
wait "$BREVALD_PID" || drain_code=$?
if [ "$drain_code" -ne 0 ]; then
	echo "brevald smoke: drain exited $drain_code, want 0" >&2
	cat "$SMOKE/brevald.log" >&2
	exit 1
fi
grep -q "drained cleanly" "$SMOKE/brevald.log" || {
	echo "brevald smoke: no clean-drain message in the log" >&2
	exit 1
}

if [ "${CHECK_INGEST:-0}" = "1" ]; then
	echo "== ingest corrupt-a-fraction smoke"
	# Opt-in: dump a run's path set as an MRT RIB, flip bytes in a
	# fraction of its records with ribflip, and require the hardened
	# front-end contract end to end: over budget the run degrades to
	# exit 3 (never 0); within budget the damaged dump yields one
	# quarantine-ledger entry per damaged record and output
	# byte-identical to ingesting the clean dump with those records
	# pruned. See docs/ingestion.md.
	go build -o "$SMOKE/ribflip" ./cmd/ribflip
	"$SMOKE/breval" -ases 600 -only clean -algos ASRank \
		-rib-out "$SMOKE/clean.rib" >/dev/null 2>&1
	# ribflip reports its summary on stderr (stdout is reserved for a
	# future pipe mode).
	flip=$("$SMOKE/ribflip" -in "$SMOKE/clean.rib" -out "$SMOKE/damaged.rib" \
		-complement "$SMOKE/pruned.rib" -every 10 2>&1)
	damaged=${flip##*damaged=}
	set +e
	"$SMOKE/breval" -ases 600 -only clean -algos ASRank \
		-rib-in "$SMOKE/damaged.rib" >/dev/null 2>&1
	code=$?
	set -e
	if [ "$code" -ne 3 ]; then
		echo "ingest smoke: over-budget run exited $code, want 3" >&2
		exit 1
	fi
	"$SMOKE/breval" -ases 600 -only clean -algos ASRank \
		-rib-in "$SMOKE/damaged.rib" -ingest-max-bad-frac 0.5 \
		-ingest-quarantine "$SMOKE/quarantine.jsonl" \
		-rib-out "$SMOKE/damaged-out.rib" 2>/dev/null >"$SMOKE/damaged.txt"
	"$SMOKE/breval" -ases 600 -only clean -algos ASRank \
		-rib-in "$SMOKE/pruned.rib" \
		-rib-out "$SMOKE/pruned-out.rib" 2>/dev/null >"$SMOKE/pruned.txt"
	lines=$(wc -l <"$SMOKE/quarantine.jsonl")
	if [ "$lines" -ne "$damaged" ]; then
		echo "ingest smoke: quarantine ledger has $lines entries, want $damaged" >&2
		exit 1
	fi
	cmp "$SMOKE/damaged-out.rib" "$SMOKE/pruned-out.rib" || {
		echo "ingest smoke: damaged-within-budget path set differs from clean-minus-quarantined" >&2
		exit 1
	}
	cmp "$SMOKE/damaged.txt" "$SMOKE/pruned.txt" || {
		echo "ingest smoke: experiment output differs from clean-minus-quarantined run" >&2
		exit 1
	}

	echo "== ingest multi-file parallel smoke"
	# Three dumps from three different worlds, the middle one damaged.
	# The parallel reader (3 file workers) must degrade over budget with
	# the same exit code as serial, and within budget must produce a
	# ledger and outputs byte-identical to both the serial reader and a
	# run over the pruned complement of the damaged file.
	"$SMOKE/breval" -ases 600 -seed 2 -only clean -algos ASRank \
		-rib-out "$SMOKE/clean2.rib" >/dev/null 2>&1
	"$SMOKE/breval" -ases 600 -seed 3 -only clean -algos ASRank \
		-rib-out "$SMOKE/clean3.rib" >/dev/null 2>&1
	flip2=$("$SMOKE/ribflip" -in "$SMOKE/clean2.rib" -out "$SMOKE/damaged2.rib" \
		-complement "$SMOKE/pruned2.rib" -every 10 2>&1)
	damaged2=${flip2##*damaged=}
	multi="$SMOKE/clean.rib,$SMOKE/damaged2.rib,$SMOKE/clean3.rib"
	set +e
	"$SMOKE/breval" -ases 600 -only clean -algos ASRank \
		-rib-in "$multi" -ingest-file-workers 3 >/dev/null 2>&1
	code=$?
	set -e
	if [ "$code" -ne 3 ]; then
		echo "ingest multi smoke: over-budget parallel run exited $code, want 3" >&2
		exit 1
	fi
	"$SMOKE/breval" -ases 600 -only clean -algos ASRank \
		-rib-in "$multi" -ingest-file-workers 3 -ingest-max-bad-frac 0.5 \
		-ingest-quarantine "$SMOKE/multi-par.jsonl" \
		-rib-out "$SMOKE/multi-par-out.rib" 2>/dev/null >"$SMOKE/multi-par.txt"
	"$SMOKE/breval" -ases 600 -only clean -algos ASRank \
		-rib-in "$multi" -ingest-max-bad-frac 0.5 \
		-ingest-quarantine "$SMOKE/multi-ser.jsonl" \
		-rib-out "$SMOKE/multi-ser-out.rib" 2>/dev/null >"$SMOKE/multi-ser.txt"
	cmp "$SMOKE/multi-par.jsonl" "$SMOKE/multi-ser.jsonl" || {
		echo "ingest multi smoke: parallel quarantine ledger differs from serial" >&2
		exit 1
	}
	cmp "$SMOKE/multi-par-out.rib" "$SMOKE/multi-ser-out.rib" || {
		echo "ingest multi smoke: parallel path set differs from serial" >&2
		exit 1
	}
	cmp "$SMOKE/multi-par.txt" "$SMOKE/multi-ser.txt" || {
		echo "ingest multi smoke: parallel experiment output differs from serial" >&2
		exit 1
	}
	# Cross-world dumps can collide on individual records (quarantined
	# as duplicates), so count only the flipped-record kind.
	flips=$(grep -c '"unknown-as"' "$SMOKE/multi-par.jsonl")
	if [ "$flips" -ne "$damaged2" ]; then
		echo "ingest multi smoke: ledger has $flips unknown-as entries, want $damaged2" >&2
		exit 1
	fi
	# Cross-world dumps collide on some records (duplicates are bad
	# records too), so the pruned run needs the same budget.
	"$SMOKE/breval" -ases 600 -only clean -algos ASRank \
		-rib-in "$SMOKE/clean.rib,$SMOKE/pruned2.rib,$SMOKE/clean3.rib" \
		-ingest-file-workers 3 -ingest-max-bad-frac 0.5 \
		-rib-out "$SMOKE/multi-pruned-out.rib" 2>/dev/null >"$SMOKE/multi-pruned.txt"
	cmp "$SMOKE/multi-par-out.rib" "$SMOKE/multi-pruned-out.rib" || {
		echo "ingest multi smoke: damaged-within-budget path set differs from pruned complement" >&2
		exit 1
	}
	cmp "$SMOKE/multi-par.txt" "$SMOKE/multi-pruned.txt" || {
		echo "ingest multi smoke: experiment output differs from pruned-complement run" >&2
		exit 1
	}

	echo "== ingest TABLE_DUMP_V2 smoke"
	# Convert the clean dump to real RFC 6396 TABLE_DUMP_V2 framing and
	# require format-blind parity: the v2 rendition (raw and gzipped,
	# serial and parallel) must ingest to the same path set bytes as the
	# internal-framing dump.
	"$SMOKE/ribflip" -in "$SMOKE/clean.rib" -out "$SMOKE/clean-v2.mrt" -to-v2 2>/dev/null
	gzip -c "$SMOKE/clean-v2.mrt" >"$SMOKE/clean-v2.mrt.gz"
	"$SMOKE/breval" -ases 600 -only clean -algos ASRank \
		-rib-in "$SMOKE/clean.rib" \
		-rib-out "$SMOKE/int-out.rib" >/dev/null 2>&1
	for v2in in clean-v2.mrt clean-v2.mrt.gz; do
		for wrk in 1 3; do
			"$SMOKE/breval" -ases 600 -only clean -algos ASRank \
				-rib-in "$SMOKE/$v2in" -ingest-file-workers "$wrk" \
				-rib-out "$SMOKE/v2-out.rib" >/dev/null 2>&1
			cmp "$SMOKE/int-out.rib" "$SMOKE/v2-out.rib" || {
				echo "v2 smoke: $v2in (workers=$wrk) differs from internal-format ingest" >&2
				exit 1
			}
		done
	done

	# Poison the v2 fixture's attribute flags: over budget the run must
	# degrade to exit 3; within budget the damaged dump must quarantine
	# exactly the flipped records under bad-attribute and match the
	# pruned complement byte for byte.
	flipv2=$("$SMOKE/ribflip" -in "$SMOKE/clean-v2.mrt" -mode attr-flags \
		-out "$SMOKE/v2-damaged.mrt" -complement "$SMOKE/v2-pruned.mrt" -every 10 2>&1)
	vdam=${flipv2##*damaged=}
	set +e
	"$SMOKE/breval" -ases 600 -only clean -algos ASRank \
		-rib-in "$SMOKE/v2-damaged.mrt" >/dev/null 2>&1
	code=$?
	set -e
	if [ "$code" -ne 3 ]; then
		echo "v2 smoke: over-budget run exited $code, want 3" >&2
		exit 1
	fi
	"$SMOKE/breval" -ases 600 -only clean -algos ASRank \
		-rib-in "$SMOKE/v2-damaged.mrt" -ingest-max-bad-frac 0.5 \
		-ingest-quarantine "$SMOKE/v2-quarantine.jsonl" \
		-rib-out "$SMOKE/v2-damaged-out.rib" 2>/dev/null >"$SMOKE/v2-damaged.txt"
	"$SMOKE/breval" -ases 600 -only clean -algos ASRank \
		-rib-in "$SMOKE/v2-pruned.mrt" \
		-rib-out "$SMOKE/v2-pruned-out.rib" 2>/dev/null >"$SMOKE/v2-pruned.txt"
	v2lines=$(grep -c '"bad-attribute"' "$SMOKE/v2-quarantine.jsonl")
	if [ "$v2lines" -ne "$vdam" ]; then
		echo "v2 smoke: ledger has $v2lines bad-attribute entries, want $vdam" >&2
		exit 1
	fi
	cmp "$SMOKE/v2-damaged-out.rib" "$SMOKE/v2-pruned-out.rib" || {
		echo "v2 smoke: damaged-within-budget path set differs from pruned complement" >&2
		exit 1
	}
	cmp "$SMOKE/v2-damaged.txt" "$SMOKE/v2-pruned.txt" || {
		echo "v2 smoke: experiment output differs from pruned-complement run" >&2
		exit 1
	}

	# A corrupt peer-index table desynchronizes the whole file: exit 3
	# even with generous budget headroom.
	"$SMOKE/ribflip" -in "$SMOKE/clean-v2.mrt" -mode peer-index \
		-out "$SMOKE/v2-desync.mrt" 2>/dev/null
	set +e
	"$SMOKE/breval" -ases 600 -only clean -algos ASRank \
		-rib-in "$SMOKE/v2-desync.mrt" -ingest-max-bad-frac 0.9 >/dev/null 2>&1
	code=$?
	set -e
	if [ "$code" -ne 3 ]; then
		echo "v2 smoke: peer-table desync exited $code, want 3" >&2
		exit 1
	fi
fi

if [ "${CHECK_SOAK:-0}" = "1" ]; then
	echo "== chaos soak (5 seeded storms, time-boxed)"
	# Opt-in: the soak replays seeded fault storms (crashes, panics,
	# transient errors, memory pressure) through the real binary and
	# requires byte-identical recovery. `timeout` boxes it so a hung
	# storm fails the gate instead of wedging CI.
	timeout 300 "$SMOKE/breval" -soak 5 -chaos-seed 42 \
		-ases 450 -algos ASRank,Gao >/dev/null
fi

if [ "${CHECK_XL:-0}" = "1" ]; then
	echo "== xl smoke (100k-AS streaming world, time-boxed)"
	# Opt-in (~3 min): the xl acceptance test streams a 100k-AS /
	# 2M-link world through block propagation and the stream collector,
	# requires byte-identical digests across worker counts, and asserts
	# peak RSS stays under the hard watermark (BREVAL_XL_HARD_MB,
	# default 4096). `timeout` boxes it so a wedged run fails the gate
	# instead of hanging CI. See docs/performance.md.
	timeout 900 env BREVAL_XL=1 go test -run '^TestXLWorldStreaming$' -timeout 14m .
fi

echo "== bench smoke (1 iteration, cheap substrate benchmarks)"
# One iteration of the substrate benchmarks keeps the suite compiling
# and runnable without paying for the full-scale fixture; `make bench`
# runs the whole sweep and records BENCH_<date>.json.
go test -run '^$' -bench '^(BenchmarkWorldGeneration|BenchmarkRoutePropagation|BenchmarkUpdateMarshal|BenchmarkUpdateUnmarshal)$' -benchtime 1x .

echo "check: OK"
