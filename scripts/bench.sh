#!/bin/sh
# bench.sh — run the root benchmark suite and record the results as a
# machine-readable JSON document BENCH_<date>.json (schema documented in
# docs/observability.md). Standard Go benchmark output is parsed with
# awk; no tools beyond the Go toolchain and POSIX sh/awk are needed.
#
# Usage:
#
#	scripts/bench.sh [BENCH_REGEX] [BENCHTIME]
#
# BENCH_REGEX defaults to '.' (every benchmark); BENCHTIME defaults to
# 1x — one iteration per benchmark, which is what the nightly trend
# wants from the full-scale fixture (each iteration regenerates a
# complete experiment). Use e.g. `scripts/bench.sh Propagation 5x` to
# focus.
set -eu
cd "$(dirname "$0")/.."

bench_re=${1:-.}
benchtime=${2:-1x}
date=$(date -u +%Y-%m-%d)
out="BENCH_${date}.json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench=$bench_re -benchtime=$benchtime -benchmem" >&2
go test -run '^$' -bench "$bench_re" -benchtime "$benchtime" -benchmem . | tee "$raw" >&2

awk -v date="$date" -v bench_re="$bench_re" -v benchtime="$benchtime" '
BEGIN {
	printf "{\n  \"date\": \"%s\",\n  \"bench\": \"%s\",\n  \"benchtime\": \"%s\",\n", date, bench_re, benchtime
	n = 0
}
/^goos: /    { goos = $2 }
/^goarch: /  { goarch = $2 }
/^cpu: /     { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
	# BenchmarkName-P  N  T ns/op  [B B/op  A allocs/op]  [extra unit ...]
	name = $1; sub(/-[0-9]+$/, "", name)
	line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
	for (i = 3; i + 1 <= NF; i += 2) {
		unit = $(i + 1)
		gsub(/\//, "_per_", unit)
		gsub(/%/, "pct", unit)
		line = line sprintf(", \"%s\": %s", unit, $i)
	}
	lines[n++] = line "}"
}
END {
	printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n", goos, goarch, cpu
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i + 1 < n ? "," : "")
	printf "  ]\n}\n"
}' "$raw" >"$out"

echo "bench: wrote $out ($(grep -c '"name"' "$out") benchmarks)" >&2
