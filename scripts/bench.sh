#!/bin/sh
# bench.sh — run the root benchmark suite and record the results as a
# machine-readable JSON document BENCH_<date>.json (schema documented in
# docs/observability.md). Standard Go benchmark output is parsed with
# awk; no tools beyond the Go toolchain and POSIX sh/awk are needed.
#
# Usage:
#
#	scripts/bench.sh [-size xl] [-against BASELINE.json] [BENCH_REGEX] [BENCHTIME]
#
# BENCH_REGEX defaults to '.' (every benchmark); BENCHTIME defaults to
# 1x — one iteration per benchmark, which is what the nightly trend
# wants from the full-scale fixture (each iteration regenerates a
# complete experiment). Use e.g. `scripts/bench.sh Propagation 5x` to
# focus.
#
# -size xl switches to the xl tier: BREVAL_XL=1 is exported so the
# otherwise-skipped 100k-AS / 2M-link benchmarks run, the default
# regex narrows to '^BenchmarkXL', and the document is written as
# BENCH_XL_<date>.json so the xl baseline never mixes with the
# default-tier trend. Expect a few minutes per iteration; the recorded
# peakRSS_MB metric is the memory envelope docs/performance.md cites.
#
# With -against, the freshly recorded document is additionally compared
# to a previously committed baseline: the gate benchmarks (route
# propagation, feature extraction, every inference algorithm, and —
# when recorded — the xl streaming pipeline) must
# not regress by more than MAX_REGRESS_PCT percent ns/op (default 15),
# or the script exits non-zero. Benchmarks that record a peakRSS_MB
# metric in both documents (the xl tier does) are additionally gated on
# memory: peak RSS growing past the same threshold fails the gate too,
# so a speedup paid for with an unbounded envelope cannot land
# silently. This is the regression gate future perf changes are
# measured against:
#
#	scripts/bench.sh -against BENCH_2026-08-06.json 'RoutePropagation|FeatureExtraction|Inference' 2x
#
# Every document is stamped with the go toolchain version and
# GOMAXPROCS it was recorded under, and -against refuses a baseline
# from a different environment: comparing ns/op across toolchains or
# core counts measures the environment, not the code.
set -eu
cd "$(dirname "$0")/.."

go_version=$(go env GOVERSION)
gomaxprocs=${GOMAXPROCS:-$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)}

# json_field FILE KEY — extract a top-level scalar field from one of
# our benchmark documents (string or number).
json_field() {
	sed -n 's/^  "'"$2"'": "\{0,1\}\([^",]*\)"\{0,1\},\{0,1\}$/\1/p' "$1" | head -n 1
}

size=""
against=""
if [ "${1:-}" = "-size" ]; then
	size=${2:?usage: bench.sh -size xl [-against BASELINE.json] [BENCH_REGEX] [BENCHTIME]}
	[ "$size" = "xl" ] || { echo "bench: unknown size '$size' (only: xl)" >&2; exit 2; }
	shift 2
fi
if [ "${1:-}" = "-against" ]; then
	against=${2:?usage: bench.sh [-size xl] -against BASELINE.json [BENCH_REGEX] [BENCHTIME]}
	[ -r "$against" ] || { echo "bench: baseline $against not readable" >&2; exit 2; }
	shift 2
	# Refuse cross-environment comparisons before paying for the run.
	base_gov=$(json_field "$against" go_version)
	base_gmp=$(json_field "$against" gomaxprocs)
	if [ -z "$base_gov" ] || [ -z "$base_gmp" ]; then
		echo "bench: baseline $against has no go_version/gomaxprocs stamp;" >&2
		echo "bench: re-record it with this script before gating against it" >&2
		exit 2
	fi
	if [ "$base_gov" != "$go_version" ]; then
		echo "bench: baseline $against was recorded with $base_gov but this is $go_version;" >&2
		echo "bench: ns/op across toolchains measures the toolchain, not the code — re-record the baseline" >&2
		exit 2
	fi
	if [ "$base_gmp" != "$gomaxprocs" ]; then
		echo "bench: baseline $against was recorded with GOMAXPROCS=$base_gmp but this run has $gomaxprocs;" >&2
		echo "bench: parallel benchmarks do not compare across core counts — re-record the baseline" >&2
		exit 2
	fi
fi

if [ "$size" = "xl" ]; then
	bench_re=${1:-^BenchmarkXL}
	export BREVAL_XL=1
	out_prefix="BENCH_XL_"
else
	bench_re=${1:-.}
	out_prefix="BENCH_"
fi
benchtime=${2:-1x}
date=$(date -u +%Y-%m-%d)
out="${out_prefix}${date}.json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench=$bench_re -benchtime=$benchtime -benchmem" >&2
go test -run '^$' -bench "$bench_re" -benchtime "$benchtime" -benchmem -timeout 60m . | tee "$raw" >&2

awk -v date="$date" -v bench_re="$bench_re" -v benchtime="$benchtime" \
	-v go_version="$go_version" -v gomaxprocs="$gomaxprocs" '
BEGIN {
	printf "{\n  \"date\": \"%s\",\n  \"bench\": \"%s\",\n  \"benchtime\": \"%s\",\n", date, bench_re, benchtime
	printf "  \"go_version\": \"%s\",\n  \"gomaxprocs\": %d,\n", go_version, gomaxprocs
	n = 0
}
/^goos: /    { goos = $2 }
/^goarch: /  { goarch = $2 }
/^cpu: /     { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
	# BenchmarkName-P  N  T ns/op  [B B/op  A allocs/op]  [extra unit ...]
	name = $1; sub(/-[0-9]+$/, "", name)
	line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
	for (i = 3; i + 1 <= NF; i += 2) {
		unit = $(i + 1)
		gsub(/\//, "_per_", unit)
		gsub(/%/, "pct", unit)
		line = line sprintf(", \"%s\": %s", unit, $i)
	}
	lines[n++] = line "}"
}
END {
	printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n", goos, goarch, cpu
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i + 1 < n ? "," : "")
	printf "  ]\n}\n"
}' "$raw" >"$out"

echo "bench: wrote $out ($(grep -c '"name"' "$out") benchmarks)" >&2

[ -n "$against" ] || exit 0

# Regression gate: compare ns/op of the gate benchmarks against the
# baseline. Both files use the schema written above (one benchmark
# object per line), so a line-oriented awk parse suffices.
echo "== comparing against $against (max +${MAX_REGRESS_PCT:-15}% ns/op and peakRSS_MB)" >&2
awk -v max_pct="${MAX_REGRESS_PCT:-15}" '
function val(line, key,    s) {
	s = line
	if (!sub(".*\"" key "\": ", "", s)) return ""
	sub("[,}].*", "", s)
	gsub(/"/, "", s)
	return s
}
/"name": "Benchmark/ {
	name = val($0, "name")
	ns = val($0, "ns_per_op")
	rss = val($0, "peakRSS_MB")
	if (name == "" || ns == "") next
	if (name !~ /^Benchmark(RoutePropagation|FeatureExtraction|Inference|XL)/) next
	if (NR == FNR) { base[name] = ns; base_rss[name] = rss; next }
	if (!(name in base)) { printf "  %-32s new (no baseline)\n", name; next }
	pct = (ns / base[name] - 1) * 100
	printf "  %-32s %14.0f -> %14.0f ns/op  %+6.1f%%\n", name, base[name], ns, pct
	if (pct > max_pct) { bad = bad name " "; failed = 1 }
	# The memory envelope gates alongside speed wherever both documents
	# recorded it (the xl tier always does).
	if (rss != "" && base_rss[name] != "") {
		rpct = (rss / base_rss[name] - 1) * 100
		printf "  %-32s %14.0f -> %14.0f peakRSS_MB  %+6.1f%%\n", name, base_rss[name], rss, rpct
		if (rpct > max_pct) { bad = bad name "(peakRSS) "; failed = 1 }
	}
}
END {
	if (NR == FNR) exit 0
	if (failed) { printf "bench: REGRESSION over %s%%: %s\n", max_pct, bad; exit 1 }
	print "bench: gate passed"
}' "$against" "$out" >&2
