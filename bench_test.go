// Package breval's root benchmark suite regenerates every table and
// figure of Prehn & Feldmann (IMC'21) on the calibrated full-scale
// synthetic Internet (~8000 ASes) and reports the headline metrics
// alongside the timings. Paper-vs-measured numbers are recorded in
// EXPERIMENTS.md; run with
//
//	go test -bench=. -benchmem
//
// The expensive world construction and route propagation are shared
// across benchmarks through a lazily-built fixture and excluded from
// the timings.
package breval

import (
	"math/rand"
	"sync"
	"testing"

	"breval/internal/asgraph"
	"breval/internal/asn"
	"breval/internal/bgp"
	"breval/internal/communities"
	"breval/internal/core"
	"breval/internal/inference"
	"breval/internal/inference/asrank"
	"breval/internal/inference/features"
	"breval/internal/inference/gao"
	"breval/internal/inference/problink"
	"breval/internal/inference/toposcope"
	"breval/internal/sampling"
	"breval/internal/topogen"
	"breval/internal/validation"
	"breval/internal/wire"
)

var (
	fixOnce sync.Once
	fixArt  *core.Artifacts
	fixErr  error
)

// fixture builds the full-scale artifacts once.
func fixture(b *testing.B) *core.Artifacts {
	b.Helper()
	fixOnce.Do(func() {
		fixArt, fixErr = core.Run(core.DefaultScenario(1))
	})
	if fixErr != nil {
		b.Fatalf("fixture: %v", fixErr)
	}
	return fixArt
}

// ---- substrate benchmarks ----

func BenchmarkWorldGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := topogen.Generate(topogen.DefaultConfig(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoutePropagation(b *testing.B) {
	w, err := topogen.Generate(topogen.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	sim := bgp.NewSimulator(w.Graph)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := sim.Propagate(w.ASNs, w.VPs)
		if ps.Len() == 0 {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	art := fixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := features.Compute(art.Paths)
		if fs.NumLinks() == 0 {
			b.Fatal("no links")
		}
	}
}

func BenchmarkValidationExtraction(b *testing.B) {
	art := fixture(b)
	ex := communities.NewExtractor(art.World.Graph, art.World.Publishers, art.World.Strippers, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := ex.Extract(art.Paths)
		if snap.Len() == 0 {
			b.Fatal("no labels")
		}
	}
}

// BenchmarkLabelCleaning regenerates the §4.2 numbers (spurious,
// ambiguous and sibling label counts).
func BenchmarkLabelCleaning(b *testing.B) {
	art := fixture(b)
	var rep validation.CleanReport
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rep = validation.Clean(art.RawValidation, art.World.Orgs, validation.Ignore)
	}
	b.ReportMetric(float64(rep.TransEntries), "trans_entries")
	b.ReportMetric(float64(rep.ReservedEntries), "reserved_entries")
	b.ReportMetric(float64(rep.MultiLabelEntries), "multilabel_entries")
	b.ReportMetric(float64(rep.SiblingEntries), "sibling_entries")
}

// ---- inference benchmarks ----

func benchInference(b *testing.B, algo inference.Algorithm) *inference.Result {
	art := fixture(b)
	var res *inference.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = algo.Infer(art.Features)
	}
	b.ReportMetric(float64(res.Len()), "links")
	return res
}

func BenchmarkInferenceASRank(b *testing.B) {
	benchInference(b, asrank.New(asrank.Options{}))
}

func BenchmarkInferenceProbLink(b *testing.B) {
	benchInference(b, problink.New(problink.Options{}))
}

func BenchmarkInferenceTopoScope(b *testing.B) {
	benchInference(b, toposcope.New(toposcope.Options{}))
}

func BenchmarkInferenceGao(b *testing.B) {
	benchInference(b, gao.New(gao.Options{}))
}

// ---- figure benchmarks ----

// BenchmarkFigure1RegionalImbalance regenerates Figure 1.
func BenchmarkFigure1RegionalImbalance(b *testing.B) {
	art := fixture(b)
	var lCov, arCov float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, st := range art.Figure1() {
			switch st.Class {
			case "L°":
				lCov = st.Coverage
			case "AR°":
				arCov = st.Coverage
			}
		}
	}
	b.ReportMetric(lCov, "L°_coverage")
	b.ReportMetric(arCov, "AR°_coverage")
}

// BenchmarkFigure2TopologicalImbalance regenerates Figure 2.
func BenchmarkFigure2TopologicalImbalance(b *testing.B) {
	art := fixture(b)
	var trCov, t1trCov float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, st := range art.Figure2() {
			switch st.Class {
			case "TR°":
				trCov = st.Coverage
			case "T1-TR":
				t1trCov = st.Coverage
			}
		}
	}
	b.ReportMetric(trCov, "TR°_coverage")
	b.ReportMetric(t1trCov, "T1-TR_coverage")
}

// BenchmarkFigure3TransitDegreeHeatmap regenerates Figure 3.
func BenchmarkFigure3TransitDegreeHeatmap(b *testing.B) {
	art := fixture(b)
	var hp core.HeatmapPair
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hp = art.Figure3()
	}
	b.ReportMetric(hp.Inferred.CornerMass(1.0/3, 1.0/3), "inferred_corner")
	b.ReportMetric(hp.Validated.CornerMass(1.0/3, 1.0/3), "validated_corner")
}

// BenchmarkFigures7to9AlternativeMetrics regenerates the appendix-B
// heatmaps (customer cone, cone without VP-incident links, node
// degree).
func BenchmarkFigures7to9AlternativeMetrics(b *testing.B) {
	art := fixture(b)
	var pairs []core.HeatmapPair
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairs = art.Figures7to9()
	}
	for _, hp := range pairs {
		b.ReportMetric(hp.Inferred.CornerMass(1.0/3, 1.0/3)-hp.Validated.CornerMass(1.0/3, 1.0/3),
			"corner_gap_"+hp.Name[:4])
	}
}

// ---- table benchmarks ----

func benchTable(b *testing.B, algo string) {
	art := fixture(b)
	if _, ok := art.Results[algo]; !ok {
		b.Fatalf("no %s result", algo)
	}
	var tab core.Table
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err = art.TableFor(algo, 500)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tab.Total.PPVP, "total_ppv_p")
	b.ReportMetric(tab.Total.MCC, "total_mcc")
	for _, r := range tab.Rows {
		if r.Class == "T1-TR" {
			b.ReportMetric(r.Row.PPVP, "t1tr_ppv_p")
			b.ReportMetric(r.Row.MCC, "t1tr_mcc")
		}
	}
}

// BenchmarkTable1ASRank regenerates Table 1.
func BenchmarkTable1ASRank(b *testing.B) { benchTable(b, core.AlgoASRank) }

// BenchmarkTable2ProbLink regenerates Table 2.
func BenchmarkTable2ProbLink(b *testing.B) { benchTable(b, core.AlgoProbLink) }

// BenchmarkTable3TopoScope regenerates Table 3.
func BenchmarkTable3TopoScope(b *testing.B) { benchTable(b, core.AlgoTopoScope) }

// ---- appendix benchmarks ----

// BenchmarkFigures4to6SamplingRobustness regenerates the Appendix-A
// sampling experiment on the T1-TR class.
func BenchmarkFigures4to6SamplingRobustness(b *testing.B) {
	art := fixture(b)
	var ser sampling.Series
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ser, err = art.Figures4to6(core.AlgoASRank, "T1-TR", sampling.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sampling.TrendSlope(ser.Pcts, ser.PPVP.Median), "ppv_slope")
	b.ReportMetric(sampling.TrendSlope(ser.Pcts, ser.MCC.Median), "mcc_slope")
}

// BenchmarkCaseStudyT1PartialTransit regenerates the §6.1 case study.
func BenchmarkCaseStudyT1PartialTransit(b *testing.B) {
	art := fixture(b)
	var wrong, focus int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := art.CaseStudy(core.AlgoASRank)
		if err != nil {
			b.Fatal(err)
		}
		wrong, focus = rep.WrongP2P, rep.FocusCount
	}
	b.ReportMetric(float64(wrong), "wrong_p2p")
	b.ReportMetric(float64(focus), "focus_links")
}

// ---- ablation benchmarks (design choices DESIGN.md calls out) ----

// BenchmarkAblationAmbiguousPolicy compares the three §4.2 multi-label
// policies: the resulting P2P/P2C counts explain the differences
// between the numbers ProbLink and TopoScope report.
func BenchmarkAblationAmbiguousPolicy(b *testing.B) {
	art := fixture(b)
	counts := map[validation.AmbiguousPolicy][2]int{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pol := range []validation.AmbiguousPolicy{
			validation.Ignore, validation.P2PIfFirst, validation.AlwaysP2C,
		} {
			snap, _ := validation.Clean(art.RawValidation, art.World.Orgs, pol)
			counts[pol] = [2]int{snap.CountByType(asgraph.P2P), snap.CountByType(asgraph.P2C)}
		}
	}
	b.ReportMetric(float64(counts[validation.P2PIfFirst][0]-counts[validation.AlwaysP2C][0]), "p2p_count_delta")
}

// BenchmarkAblationVPSetSize sweeps the vantage-point fraction: fewer
// VPs mean fewer triplets and a worse ASRank — the visibility problem
// §1 describes.
func BenchmarkAblationVPSetSize(b *testing.B) {
	art := fixture(b)
	fractions := []float64{0.25, 0.5, 1.0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fractions {
			n := int(f * float64(len(art.World.VPs)))
			if n < 1 {
				n = 1
			}
			keep := make(map[asn.ASN]bool, n)
			for _, v := range art.World.VPs[:n] {
				keep[v] = true
			}
			sub := bgp.NewPathSet(art.Paths.Len(), art.Paths.Len()*4)
			art.Paths.ForEach(func(p asgraph.Path) {
				if keep[p.VantagePoint()] {
					sub.Append(p)
				}
			})
			fs := features.Compute(sub)
			res := asrank.New(asrank.Options{}).Infer(fs)
			if res.Len() == 0 {
				b.Fatal("no inference")
			}
		}
	}
}

// BenchmarkAblationPublisherBias contrasts the biased publisher
// population with an unbiased (uniform random, same size) one: with
// uniform publishers the LACNIC coverage hole disappears.
func BenchmarkAblationPublisherBias(b *testing.B) {
	art := fixture(b)
	nPub := len(art.World.Publishers)
	rng := rand.New(rand.NewSource(99))
	uniform := make(map[asn.ASN]bool, nPub)
	for len(uniform) < nPub {
		uniform[art.World.ASNs[rng.Intn(len(art.World.ASNs))]] = true
	}
	var lCov float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := communities.NewExtractor(art.World.Graph, uniform, art.World.Strippers, nil)
		snap := ex.Extract(art.Paths)
		clean, _ := validation.Clean(snap, art.World.Orgs, validation.Ignore)
		inL, valL := 0, 0
		art.ForEachInferredLink(func(l asgraph.Link) {
			if cls, ok := art.RegionCls.Class(l); ok && cls == "L°" {
				inL++
				if clean.Has(l) {
					valL++
				}
			}
		})
		if inL > 0 {
			lCov = float64(valL) / float64(inL)
		}
	}
	b.ReportMetric(lCov, "uniform_L°_coverage")
}

// ---- wire-format micro benchmarks ----

func BenchmarkUpdateMarshal(b *testing.B) {
	u := &wire.Update{
		ASPath:      asgraph.Path{64500, 3356, 174, 2914, 1299},
		Communities: []communities.Community{{ASN: 3356, Value: 666}, {ASN: 174, Value: 990}},
		NLRI:        []wire.Prefix{wire.PrefixForAS(1299)},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateUnmarshal(b *testing.B) {
	u := &wire.Update{
		ASPath:      asgraph.Path{64500, 3356, 174, 2914, 1299},
		Communities: []communities.Community{{ASN: 3356, Value: 666}},
		NLRI:        []wire.Prefix{wire.PrefixForAS(1299)},
	}
	buf, err := u.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := wire.UnmarshalUpdate(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- extension benchmarks ----

// BenchmarkHardLinkAnalysis regenerates the §3.3 hard-link skew.
func BenchmarkHardLinkAnalysis(b *testing.B) {
	art := fixture(b)
	var allHard, valHard float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, skew := art.HardLinks()
		allHard, valHard = skew.AllHard, skew.ValidatedHard
	}
	b.ReportMetric(allHard, "hard_share_all")
	b.ReportMetric(valHard, "hard_share_validated")
}

// BenchmarkAppendixCFeatures computes the 11 single-snapshot features
// of Appendix C for every validated link.
func BenchmarkAppendixCFeatures(b *testing.B) {
	art := fixture(b)
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = len(art.AppendixC(nil))
	}
	b.ReportMetric(float64(n), "vectors")
}

// BenchmarkAblationValidationSources contrasts communities (iii), IRR
// policies (ii) and their union — §7's argument that source diversity
// softens the regional bias.
func BenchmarkAblationValidationSources(b *testing.B) {
	art := fixture(b)
	var commL, irrL float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, st := range art.SourceComparison() {
			switch st.Name {
			case "communities (iii)":
				commL = st.Coverage["L°"]
			case "IRR policies (ii)":
				irrL = st.Coverage["L°"]
			}
		}
	}
	b.ReportMetric(commL, "communities_L°_coverage")
	b.ReportMetric(irrL, "irr_L°_coverage")
}

// BenchmarkAblationLookingGlassReclassification measures the §6
// improvement headroom: applying the looking-glass diagnosis to the
// T1-TR class.
func BenchmarkAblationLookingGlassReclassification(b *testing.B) {
	art := fixture(b)
	var r core.ReclassResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err = art.LookingGlassReclassification(core.AlgoASRank)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Before.PPVP, "t1tr_ppv_p_before")
	b.ReportMetric(r.After.PPVP, "t1tr_ppv_p_after")
}

// BenchmarkEvolutionOversampling runs the §7 monthly-churn study on a
// mid-size world (the full pipeline re-propagates per month).
func BenchmarkEvolutionOversampling(b *testing.B) {
	s := core.DefaultScenario(4)
	s.NumASes = 2500
	s.Algorithms = []string{core.AlgoASRank}
	art, err := core.Run(s)
	if err != nil {
		b.Fatal(err)
	}
	var gain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := art.RunEvolution(6)
		if err != nil {
			b.Fatal(err)
		}
		gain = res.OversamplingGain()
	}
	b.ReportMetric(gain, "oversampling_gain")
}

// BenchmarkUncertaintyCalibration computes the UNARI-style posterior
// calibration curve (ProbLink with uncertainty output).
func BenchmarkUncertaintyCalibration(b *testing.B) {
	art := fixture(b)
	var topAcc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buckets := art.UncertaintyCalibration(5)
		topAcc = buckets[len(buckets)-1].Accuracy
	}
	b.ReportMetric(topAcc, "top_bucket_accuracy")
}
